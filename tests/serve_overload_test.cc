// Overload hardening of the serving tier: admission control sheds with
// kUnavailable instead of queueing, deadlines bound query latency, lame-duck
// drains cleanly, transient load failures are retried with backoff, a pack
// with one corrupt shard serves its intact shards (wrong answers are
// impossible: a probe routed to the dead shard either rescues the exact
// answer through its reverse orientation or returns kUnavailable), and a
// reload storm with >= 100 injected load failures never fails a reader
// query. The storm is a TSan target.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "geodesic/dijkstra_solver.h"
#include "oracle/oracle_serde.h"
#include "oracle/pack_view.h"
#include "serve/engine.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

struct OverloadFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<SeOracle> oracle;
  std::string flat_path;
  std::string pack_path;          // healthy 4-shard pack
  std::string corrupt_pack_path;  // same pack with one shard's bytes flipped
  uint32_t corrupt_shard = 0;

  OverloadFixture()
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 24, 7)) {
    TSO_CHECK(ds.ok());
    DijkstraSolver solver(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));

    flat_path = ::testing::TempDir() + "/overload_flat.tso";
    TSO_CHECK(SaveSeOracleFlat(*oracle, flat_path).ok());
    pack_path = ::testing::TempDir() + "/overload_pack.tsop";
    PackBuildOptions pack;
    pack.num_shards = 4;
    TSO_CHECK(SaveOraclePack(*oracle, pack, pack_path).ok());

    // Corrupt exactly one shard: flip the embedded TSOFLAT header of the
    // last shard section, so even a checksum-less structural open rejects
    // that shard. The rest of the pack is untouched.
    StatusOr<std::string> bytes = SerializeOraclePack(*oracle, pack);
    TSO_CHECK(bytes.ok());
    StatusOr<PackFileInfo> info = ReadPackFileInfo(*bytes);
    TSO_CHECK(info.ok());
    const FlatSectionEntry& victim = info->sections.back();
    corrupt_shard =
        static_cast<uint32_t>(info->sections.size() - 1 -
                              kPackFixedSectionCount);
    std::string corrupt = *bytes;
    for (uint64_t i = 0; i < 16; ++i) {
      corrupt[victim.offset + i] ^= 0x5a;
    }
    corrupt_pack_path = ::testing::TempDir() + "/overload_corrupt.tsop";
    std::ofstream(corrupt_pack_path, std::ios::binary) << corrupt;
  }
};

OverloadFixture& Fixture() {
  static OverloadFixture* fx = new OverloadFixture();
  return *fx;
}

class ServeOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// A pause-armed "serve.query" failpoint holds an admission slot (it fires
// after the slot is taken), so a 1-slot engine saturates deterministically:
// every query arriving while the blocker is paused is shed, unblocked
// instantly, with kUnavailable.
TEST_F(ServeOverloadTest, AdmissionControlShedsWhenSaturated) {
  ServeOptions options;
  options.max_inflight = 1;
  ServeEngine engine(options);
  ASSERT_TRUE(engine.Load(Fixture().flat_path).ok());

  ASSERT_TRUE(failpoint::Arm("serve.query", "pause").ok());
  std::thread blocker([&]() {
    StatusOr<double> held = engine.Distance(0, 1);
    EXPECT_TRUE(held.ok());  // completes normally once disarmed
  });
  while (engine.stats().inflight == 0) std::this_thread::yield();

  // "serve.query" would pause these too — but they are shed before reaching
  // it, which is itself part of the contract: shedding happens at
  // admission, ahead of any queueing point.
  constexpr uint64_t kShed = 50;
  for (uint64_t i = 0; i < kShed; ++i) {
    StatusOr<double> shed = engine.Distance(1, 2);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  }
  const ServeEngine::Stats saturated = engine.stats();
  EXPECT_EQ(saturated.shed, kShed);
  EXPECT_EQ(saturated.inflight, 1u);

  failpoint::Disarm("serve.query");
  blocker.join();
  EXPECT_EQ(engine.stats().inflight, 0u);
  // Capacity freed: queries flow again.
  EXPECT_TRUE(engine.Distance(1, 2).ok());
  EXPECT_EQ(engine.stats().shed, kShed);
}

TEST_F(ServeOverloadTest, DeadlineExceededQueriesReportWithinBudget) {
  ServeEngine engine;
  ASSERT_TRUE(engine.Load(Fixture().flat_path).ok());

  // A 5 ms injected stall against a 100 µs budget: every query shape must
  // come back kDeadlineExceeded, promptly after the stall.
  ASSERT_TRUE(failpoint::Arm("serve.query", "delay(5)").ok());
  QueryOptions tight;
  tight.deadline = std::chrono::microseconds(100);

  EXPECT_EQ(engine.Distance(0, 1, tight).status().code(),
            StatusCode::kDeadlineExceeded);
  const std::vector<std::pair<uint32_t, uint32_t>> queries = {{0, 1}, {2, 3}};
  EXPECT_EQ(engine.Batch(queries, 1, tight).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.Knn(0, 3, 1, tight).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.Range(0, 1.0, 1, tight).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().deadline_exceeded, 4u);

  failpoint::Disarm("serve.query");
  // Without the stall the same budget is ample for one distance probe.
  EXPECT_TRUE(engine.Distance(0, 1, tight).ok());
  // And with no deadline at all, even a stalled query succeeds.
  ASSERT_TRUE(failpoint::Arm("serve.query", "delay(1)").ok());
  EXPECT_TRUE(engine.Distance(0, 1).ok());
}

TEST_F(ServeOverloadTest, EngineDefaultDeadlineApplies) {
  ServeOptions options;
  options.default_deadline = std::chrono::microseconds(100);
  ServeEngine engine(options);
  ASSERT_TRUE(engine.Load(Fixture().flat_path).ok());
  ASSERT_TRUE(failpoint::Arm("serve.query", "delay(5)").ok());
  EXPECT_EQ(engine.Distance(0, 1).status().code(),
            StatusCode::kDeadlineExceeded);
  // A per-query deadline overrides the engine default.
  QueryOptions generous;
  generous.deadline = std::chrono::seconds(10);
  EXPECT_TRUE(engine.Distance(0, 1, generous).ok());
}

TEST_F(ServeOverloadTest, LameDuckShedsNewQueriesUntilExited) {
  ServeEngine engine;
  ASSERT_TRUE(engine.Load(Fixture().flat_path).ok());
  EXPECT_EQ(engine.stats().health, ServeHealth::kServing);

  engine.EnterLameDuck();
  EXPECT_EQ(engine.stats().health, ServeHealth::kLameDuck);
  StatusOr<double> shed = engine.Distance(0, 1);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.stats().shed, 1u);
  EXPECT_EQ(engine.stats().inflight, 0u);  // shed queries hold no slot

  engine.ExitLameDuck();
  EXPECT_EQ(engine.stats().health, ServeHealth::kServing);
  EXPECT_TRUE(engine.Distance(0, 1).ok());
}

TEST_F(ServeOverloadTest, TransientLoadFailuresAreRetriedWithBackoff) {
  ServeOptions options;
  options.load_retries = 3;
  options.load_backoff = std::chrono::milliseconds(1);
  ServeEngine engine(options);

  // Two injected transient failures, then success on the third attempt.
  ASSERT_TRUE(failpoint::Arm("serve.load", "2*error").ok());
  ASSERT_TRUE(engine.Load(Fixture().flat_path).ok());
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.load_retries, 2u);
  EXPECT_EQ(stats.load_failures, 0u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_TRUE(engine.Distance(0, 1).ok());

  // A persistent failure exhausts the retries and is reported with the
  // path; the published generation keeps serving.
  ASSERT_TRUE(failpoint::Arm("serve.load", "error").ok());
  const Status failed = engine.Load(Fixture().flat_path);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find(Fixture().flat_path), std::string::npos);
  stats = engine.stats();
  EXPECT_EQ(stats.load_failures, 1u);
  EXPECT_EQ(stats.load_retries, 2u + 3u);
  EXPECT_TRUE(engine.Distance(0, 1).ok());
  failpoint::Disarm("serve.load");

  // Permanent failures (validation, not I/O) are not retried.
  const std::string garbage = ::testing::TempDir() + "/overload_garbage";
  std::ofstream(garbage) << "not an oracle";
  const uint64_t retries_before = engine.stats().load_retries;
  EXPECT_FALSE(engine.Load(garbage).ok());
  EXPECT_EQ(engine.stats().load_retries, retries_before);
  std::remove(garbage.c_str());
}

// One corrupt shard of a 4-shard pack: a strict open rejects the file; the
// hardened engine quarantines the shard and serves the rest. Every query
// either matches the monolithic oracle bit-exactly or returns kUnavailable
// — never a wrong answer — and a healthy majority of queries must survive
// (the reverse-orientation rescue keeps single-dead-shard availability far
// above the naive (3/4)^2).
TEST_F(ServeOverloadTest, CorruptShardDegradesInsteadOfFailing) {
  OverloadFixture& fx = Fixture();
  PackView::Options strict;
  strict.verify_checksums = true;
  EXPECT_FALSE(PackView::Open(fx.corrupt_pack_path, strict).ok());

  PackView::Options degraded;
  degraded.verify_checksums = true;
  degraded.allow_degraded = true;
  StatusOr<PackView> quarantined =
      PackView::Open(fx.corrupt_pack_path, degraded);
  ASSERT_TRUE(quarantined.ok()) << quarantined.status().ToString();
  EXPECT_FALSE(quarantined->shard_available(fx.corrupt_shard));
  EXPECT_EQ(quarantined->num_available(), 3u);

  ServeEngine engine;  // allow_degraded_packs defaults on
  ASSERT_TRUE(engine.Load(fx.corrupt_pack_path).ok());
  const ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.num_shards, 4u);
  EXPECT_EQ(stats.degraded_shards, 1u);
  EXPECT_EQ(stats.health, ServeHealth::kDegraded);

  const uint32_t n = static_cast<uint32_t>(fx.oracle->num_pois());
  uint64_t exact = 0, unavailable = 0;
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      StatusOr<double> got = engine.Distance(s, t);
      if (got.ok()) {
        // A rescued probe answers from the pair's reverse-orientation
        // record, which can differ from the forward record in final ulps
        // (opposite SSAD sources) — hence NEAR, not EQ.
        const double truth = *fx.oracle->Distance(s, t);
        EXPECT_NEAR(*got, truth, 1e-9 * (1.0 + truth)) << s << "," << t;
        ++exact;
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
            << got.status().ToString();
        ++unavailable;
      }
    }
  }
  EXPECT_GT(unavailable, 0u);  // the dead shard is genuinely unreachable
  EXPECT_GT(exact, 9 * (exact + unavailable) / 16);  // > (3/4)^2 availability

  // A reload of the healthy pack clears the degradation.
  ASSERT_TRUE(engine.Load(fx.pack_path).ok());
  EXPECT_EQ(engine.stats().degraded_shards, 0u);
  EXPECT_EQ(engine.stats().health, ServeHealth::kServing);
}

// Degradation is opt-out: an engine configured strict rejects the corrupt
// pack outright (and keeps its previous generation).
TEST_F(ServeOverloadTest, StrictEngineRejectsCorruptPack) {
  ServeOptions options;
  options.allow_degraded_packs = false;
  ServeEngine engine(options);
  ASSERT_TRUE(engine.Load(Fixture().pack_path).ok());
  const Status failed = engine.Load(Fixture().corrupt_pack_path);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find(Fixture().corrupt_pack_path),
            std::string::npos);
  EXPECT_EQ(engine.stats().degraded_shards, 0u);
  EXPECT_TRUE(engine.Distance(0, 1).ok());
}

// The acceptance storm: >= 100 reloads fail with injected errors while 8
// reader threads hammer the query surface. Readers must never observe a
// failed query — the engine keeps serving the last good generation through
// every injected failure. TSan-green is part of the criterion (the tsan CI
// job runs this suite).
TEST_F(ServeOverloadTest, ReloadStormWithInjectedFailuresNeverFailsAQuery) {
  OverloadFixture& fx = Fixture();
  const uint32_t n = static_cast<uint32_t>(fx.oracle->num_pois());
  std::vector<double> expected(static_cast<size_t>(n) * n);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      expected[static_cast<size_t>(s) * n + t] = *fx.oracle->Distance(s, t);
    }
  }

  ServeOptions options;
  options.load_retries = 1;  // exercise the retry path under the storm too
  options.load_backoff = std::chrono::milliseconds(0);
  ServeEngine engine(options);
  ASSERT_TRUE(engine.Load(fx.pack_path).ok());

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> started{0};
  std::atomic<uint64_t> failed_queries{0};
  std::atomic<uint64_t> wrong_answers{0};
  std::atomic<uint64_t> ok_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      uint32_t x = static_cast<uint32_t>(r) * 2654435761u + 1;
      bool announced = false;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 1664525u + 1013904223u;
        const uint32_t s = (x >> 16) % n;
        const uint32_t t = (x >> 4) % n;
        StatusOr<double> got = engine.Distance(s, t);
        if (!got.ok()) {
          failed_queries.fetch_add(1, std::memory_order_relaxed);
        } else if (*got != expected[static_cast<size_t>(s) * n + t]) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        } else {
          ok_queries.fetch_add(1, std::memory_order_relaxed);
        }
        if (!announced) {
          announced = true;
          started.fetch_add(1, std::memory_order_release);
        }
      }
    });
  }
  // Injected load failures are near-instant (the failpoint fires before any
  // I/O), so without this barrier the whole storm could finish before a
  // single reader gets scheduled — making the test vacuous.
  while (started.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }

  constexpr uint64_t kFailedReloads = 120;
  uint64_t injected_failures = 0;
  for (uint64_t i = 0; i < kFailedReloads; ++i) {
    // "2*error" outlasts the single configured retry: both the first
    // attempt and its retry fail, so the whole Load fails.
    ASSERT_TRUE(failpoint::Arm("serve.load", "2*error").ok());
    EXPECT_FALSE(engine.Load(fx.flat_path).ok());
    ++injected_failures;
    failpoint::Disarm("serve.load");
    // Interleave successful reloads so the storm also swaps generations.
    if (i % 10 == 0) {
      ASSERT_TRUE(
          engine.Load(i % 20 == 0 ? fx.flat_path : fx.pack_path).ok());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GE(injected_failures, 100u);
  EXPECT_EQ(failed_queries.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_GT(ok_queries.load(), 0u);
  const ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.load_failures, kFailedReloads);
  EXPECT_EQ(stats.load_retries, kFailedReloads);
  EXPECT_EQ(stats.health, ServeHealth::kServing);
}

}  // namespace
}  // namespace tso
