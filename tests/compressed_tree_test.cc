#include "oracle/compressed_tree.h"

#include <gtest/gtest.h>

#include "geodesic/mmp_solver.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

struct Fixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<MmpSolver> solver;
  StatusOr<PartitionTree> tree{Status::Internal("unset")};

  explicit Fixture(size_t n_pois, uint64_t seed) :
      ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, n_pois,
                          seed)) {
    TSO_CHECK(ds.ok());
    solver = std::make_unique<MmpSolver>(*ds->mesh);
    Rng rng(seed * 3 + 1);
    tree = PartitionTree::Build(*ds->mesh, ds->pois, *solver,
                                SelectionStrategy::kRandom, rng, nullptr);
    TSO_CHECK(tree.ok());
  }
};

TEST(CompressedTree, InvariantsHold) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Fixture fx(16, seed);
    CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
    EXPECT_TRUE(ct.CheckInvariants().ok()) << "seed " << seed;
    EXPECT_EQ(ct.height(), fx.tree->height());
    EXPECT_LE(ct.num_nodes(), 2 * fx.ds->pois.size() - 1);  // Lemma 9
    EXPECT_LE(ct.num_nodes(), fx.tree->num_nodes());
  }
}

TEST(CompressedTree, LeafPerPoi) {
  Fixture fx(20, 7);
  CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
  std::vector<bool> used(ct.num_nodes(), false);
  for (uint32_t p = 0; p < fx.ds->pois.size(); ++p) {
    const uint32_t leaf = ct.leaf_of_poi(p);
    ASSERT_LT(leaf, ct.num_nodes());
    EXPECT_EQ(ct.node(leaf).center, p);
    EXPECT_EQ(ct.node(leaf).num_children, 0u);
    EXPECT_EQ(ct.node(leaf).radius, 0.0);
    EXPECT_FALSE(used[leaf]);
    used[leaf] = true;
  }
}

TEST(CompressedTree, CentersPreservedOnPath) {
  // The surviving node of a collapsed chain keeps the chain's center
  // (all nodes of a single-child chain share the same center by Step 2(b)(i)
  // of the construction: a previous-layer center is selected first).
  Fixture fx(15, 11);
  CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
  // Walk each leaf to the root; layers must strictly decrease.
  for (uint32_t p = 0; p < fx.ds->pois.size(); ++p) {
    uint32_t cur = ct.leaf_of_poi(p);
    int last_layer = ct.node(cur).layer;
    while (ct.node(cur).parent != kInvalidId) {
      cur = ct.node(cur).parent;
      EXPECT_LT(ct.node(cur).layer, last_layer);
      last_layer = ct.node(cur).layer;
    }
    EXPECT_EQ(cur, ct.root());
  }
}

TEST(CompressedTree, AncestorArray) {
  Fixture fx(18, 13);
  CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
  std::vector<uint32_t> arr;
  for (uint32_t p = 0; p < fx.ds->pois.size(); ++p) {
    const uint32_t leaf = ct.leaf_of_poi(p);
    ct.AncestorArray(leaf, &arr);
    ASSERT_EQ(arr.size(), static_cast<size_t>(ct.height()) + 1);
    EXPECT_EQ(arr[0], ct.root());
    EXPECT_EQ(arr[ct.height()], leaf);
    // Every non-empty entry sits at its own layer, and entries are exactly
    // the path nodes.
    int path_nodes = 0;
    for (int i = 0; i <= ct.height(); ++i) {
      if (arr[i] == kInvalidId) continue;
      EXPECT_EQ(ct.node(arr[i]).layer, i);
      ++path_nodes;
    }
    int walk_nodes = 0;
    for (uint32_t cur = leaf; cur != kInvalidId; cur = ct.node(cur).parent) {
      ++walk_nodes;
    }
    EXPECT_EQ(path_nodes, walk_nodes);
  }
}

TEST(CompressedTree, ChildLinksConsistent) {
  Fixture fx(22, 17);
  CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
  size_t edges = 0;
  for (uint32_t id = 0; id < ct.num_nodes(); ++id) {
    uint32_t count = 0;
    for (uint32_t c = ct.node(id).first_child; c != kInvalidId;
         c = ct.node(c).next_sibling) {
      EXPECT_EQ(ct.node(c).parent, id);
      ++count;
    }
    EXPECT_EQ(count, ct.node(id).num_children);
    edges += count;
  }
  EXPECT_EQ(edges, ct.num_nodes() - 1);  // a tree
}

TEST(CompressedTree, SingleNodeTree) {
  Fixture fx(1, 23);
  CompressedTree ct = CompressedTree::FromPartitionTree(*fx.tree);
  EXPECT_EQ(ct.num_nodes(), 1u);
  EXPECT_TRUE(ct.CheckInvariants().ok());
  std::vector<uint32_t> arr;
  ct.AncestorArray(ct.leaf_of_poi(0), &arr);
  EXPECT_EQ(arr[0], ct.root());
}

}  // namespace
}  // namespace tso
