#include "base/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace tso {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(9);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextU64());
  a.Reseed(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), first[i]);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformDoubleBounds) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.UniformDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleAll) {
  Rng rng(8);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace tso
