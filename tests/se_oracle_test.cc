#include "oracle/se_oracle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/full_materialization.h"
#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "oracle/oracle_serde.h"
#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

struct OracleFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<MmpSolver> solver;
  std::unique_ptr<FullMaterialization> exact;

  OracleFixture(size_t n_pois, uint64_t seed, uint32_t vertices = 400)
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, vertices,
                            n_pois, seed)) {
    TSO_CHECK(ds.ok());
    solver = std::make_unique<MmpSolver>(*ds->mesh);
    StatusOr<FullMaterialization> fm =
        FullMaterialization::Build(ds->pois, *solver);
    TSO_CHECK(fm.ok());
    exact = std::make_unique<FullMaterialization>(std::move(*fm));
  }

  SeOracle BuildOracle(const SeOracleOptions& options,
                       SeBuildStats* stats = nullptr) {
    StatusOr<SeOracle> oracle =
        SeOracle::Build(*ds->mesh, ds->pois, *solver, options, stats);
    TSO_CHECK(oracle.ok());
    return std::move(*oracle);
  }
};

// The central property-style sweep: the ε guarantee must hold for EVERY
// pair, over ε values, seeds, and both selection strategies.
class SeEpsilonSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SeEpsilonSweep, AllPairsWithinEpsilon) {
  const double eps = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  OracleFixture fx(18, seed);
  SeOracleOptions options;
  options.epsilon = eps;
  options.seed = seed * 7 + 1;
  SeBuildStats stats;
  SeOracle oracle = fx.BuildOracle(options, &stats);
  EXPECT_EQ(stats.distance_fallbacks, 0u)
      << "enhanced-edge lookups must never miss (Lemma 4)";
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      StatusOr<double> approx = oracle.Distance(s, t);
      ASSERT_TRUE(approx.ok()) << approx.status().ToString();
      const double truth = fx.exact->Distance(s, t);
      EXPECT_LE(std::abs(*approx - truth), eps * truth + 1e-9)
          << "eps=" << eps << " seed=" << seed << " pair " << s << "," << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsAndSeeds, SeEpsilonSweep,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.25),
                       ::testing::Values(1, 2, 3)));

TEST(SeOracle, GreedySelectionAlsoWithinEpsilon) {
  OracleFixture fx(16, 21);
  SeOracleOptions options;
  options.epsilon = 0.1;
  options.selection = SelectionStrategy::kGreedy;
  SeOracle oracle = fx.BuildOracle(options);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = s + 1; t < n; ++t) {
      const double truth = fx.exact->Distance(s, t);
      EXPECT_LE(std::abs(*oracle.Distance(s, t) - truth),
                options.epsilon * truth + 1e-9);
    }
  }
}

TEST(SeOracle, NaiveAndEfficientQueryAgree) {
  OracleFixture fx(20, 23);
  SeOracleOptions options;
  options.epsilon = 0.1;
  SeOracle oracle = fx.BuildOracle(options);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      StatusOr<double> fast = oracle.Distance(s, t);
      StatusOr<double> naive = oracle.DistanceNaive(s, t);
      ASSERT_TRUE(fast.ok() && naive.ok());
      EXPECT_EQ(*fast, *naive) << s << "," << t;
    }
  }
}

TEST(SeOracle, NaiveAndEfficientConstructionAgree) {
  // Same seed => same tree; the enhanced-edge distances must equal the
  // per-pair SSAD distances, so the resulting oracles answer identically.
  OracleFixture fx(14, 29);
  SeOracleOptions eff;
  eff.epsilon = 0.15;
  eff.seed = 5;
  SeOracleOptions naive = eff;
  naive.construction = ConstructionMethod::kNaive;
  SeOracle a = fx.BuildOracle(eff);
  SeOracle b = fx.BuildOracle(naive);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_NEAR(*a.Distance(s, t), *b.Distance(s, t),
                  1e-6 * (1.0 + *a.Distance(s, t)))
          << s << "," << t;
    }
  }
}

TEST(SeOracle, SymmetricAnswers) {
  OracleFixture fx(15, 31);
  SeOracleOptions options;
  options.epsilon = 0.1;
  SeOracle oracle = fx.BuildOracle(options);
  // The pair containing (s,t) differs from the one containing (t,s), but
  // both must be ε-approximations; check consistency within 2ε.
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = s + 1; t < n; ++t) {
      const double st = *oracle.Distance(s, t);
      const double ts = *oracle.Distance(t, s);
      const double truth = fx.exact->Distance(s, t);
      EXPECT_LE(std::abs(st - ts), 2.0 * options.epsilon * truth + 1e-9);
    }
  }
}

TEST(SeOracle, SelfDistanceZero) {
  OracleFixture fx(10, 37);
  SeOracleOptions options;
  SeOracle oracle = fx.BuildOracle(options);
  for (uint32_t p = 0; p < fx.ds->pois.size(); ++p) {
    EXPECT_EQ(*oracle.Distance(p, p), 0.0);
  }
}

TEST(SeOracle, OutOfRangeRejected) {
  OracleFixture fx(8, 41);
  SeOracleOptions options;
  SeOracle oracle = fx.BuildOracle(options);
  EXPECT_FALSE(oracle.Distance(0, 99).ok());
  EXPECT_FALSE(oracle.Distance(99, 0).ok());
  EXPECT_FALSE(oracle.DistanceNaive(99, 0).ok());
}

TEST(SeOracle, InvalidOptionsRejected) {
  OracleFixture fx(8, 43);
  SeOracleOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(
      SeOracle::Build(*fx.ds->mesh, fx.ds->pois, *fx.solver, options, nullptr)
          .ok());
  std::vector<SurfacePoint> empty;
  options.epsilon = 0.1;
  EXPECT_FALSE(
      SeOracle::Build(*fx.ds->mesh, empty, *fx.solver, options, nullptr).ok());
}

TEST(SeOracle, WorksWithDijkstraMetric) {
  // The ε guarantee is relative to the injected solver's metric.
  OracleFixture fx(15, 47);
  DijkstraSolver dijkstra(*fx.ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*fx.ds->mesh, fx.ds->pois, dijkstra, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = s + 1; t < n; ++t) {
      const double truth =
          dijkstra.PointToPoint(fx.ds->pois[s], fx.ds->pois[t]).value();
      EXPECT_LE(std::abs(*oracle->Distance(s, t) - truth),
                options.epsilon * truth + 1e-9);
    }
  }
}

TEST(SeOracle, V2VMode) {
  // All POIs are vertices (the paper's V2V query setting).
  OracleFixture fx(5, 53);
  Rng rng(4);
  std::vector<SurfacePoint> pois =
      PoisFromRandomVertices(*fx.ds->mesh, 24, rng);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*fx.ds->mesh, pois, *fx.solver, options, nullptr);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (uint32_t s = 0; s < pois.size(); ++s) {
    for (uint32_t t = s + 1; t < pois.size(); ++t) {
      const double truth = fx.solver->PointToPoint(pois[s], pois[t]).value();
      EXPECT_LE(std::abs(*oracle->Distance(s, t) - truth),
                options.epsilon * truth + 1e-9);
    }
  }
}

TEST(SeOracle, StatsPopulated) {
  OracleFixture fx(15, 59);
  SeOracleOptions options;
  options.epsilon = 0.1;
  SeBuildStats stats;
  SeOracle oracle = fx.BuildOracle(options, &stats);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.ssad_runs, 0u);
  EXPECT_GT(stats.enhanced_edges, 0u);
  EXPECT_GT(stats.node_pairs, 0u);
  EXPECT_GE(stats.pairs_considered, stats.node_pairs);
  EXPECT_EQ(stats.height, oracle.height());
  EXPECT_GT(oracle.SizeBytes(), 0u);
}

TEST(SeOracle, SizeScalesWithEpsilon) {
  OracleFixture fx(20, 61);
  SeOracleOptions coarse;
  coarse.epsilon = 0.5;
  SeOracleOptions fine;
  fine.epsilon = 0.05;
  SeOracle a = fx.BuildOracle(coarse);
  SeOracle b = fx.BuildOracle(fine);
  EXPECT_LE(a.pair_set().size(), b.pair_set().size());
}

TEST(SeOracle, ParallelBuildMatchesSequential) {
  OracleFixture fx(20, 83);
  SeOracleOptions sequential;
  sequential.epsilon = 0.1;
  sequential.seed = 9;
  SeOracleOptions parallel = sequential;
  const TerrainMesh& mesh = *fx.ds->mesh;
  parallel.parallel_solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new MmpSolver(mesh));
  };
  parallel.num_threads = 4;
  SeBuildStats seq_stats, par_stats;
  SeOracle a = fx.BuildOracle(sequential, &seq_stats);
  SeOracle b = fx.BuildOracle(parallel, &par_stats);
  EXPECT_EQ(par_stats.distance_fallbacks, 0u);
  EXPECT_EQ(seq_stats.node_pairs, par_stats.node_pairs);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*a.Distance(s, t), *b.Distance(s, t)) << s << "," << t;
    }
  }
}

TEST(SeOracle, EightThreadBuildIsDeterministic) {
  // Acceptance gate: the T=8 build (parallel partition tree + WSPD + enhanced
  // edges) must answer every query identically to the T=1 build, with the
  // same node-pair count. The cheap Dijkstra metric keeps this fast.
  OracleFixture fx(40, 89, 600);
  DijkstraSolver serial_solver(*fx.ds->mesh);
  DijkstraSolver parallel_solver(*fx.ds->mesh);
  SeOracleOptions sequential;
  sequential.epsilon = 0.2;
  sequential.seed = 17;
  SeOracleOptions parallel = sequential;
  const TerrainMesh& mesh = *fx.ds->mesh;
  parallel.parallel_solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  parallel.num_threads = 8;
  SeBuildStats seq_stats, par_stats;
  StatusOr<SeOracle> a = SeOracle::Build(mesh, fx.ds->pois, serial_solver,
                                         sequential, &seq_stats);
  StatusOr<SeOracle> b = SeOracle::Build(mesh, fx.ds->pois, parallel_solver,
                                         parallel, &par_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(seq_stats.threads_used, 1u);
  EXPECT_EQ(par_stats.threads_used, 8u);
  EXPECT_EQ(par_stats.distance_fallbacks, 0u);
  EXPECT_EQ(seq_stats.node_pairs, par_stats.node_pairs);
  EXPECT_EQ(seq_stats.height, par_stats.height);
  EXPECT_GT(par_stats.tree_speculative_ssads, 0u);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*a->Distance(s, t), *b->Distance(s, t)) << s << "," << t;
    }
  }
}

TEST(SeOracle, BatchedParallelBuildMatchesSerialUnbatched) {
  // Acceptance gate for multi-source batching: T=8 with 4-source group
  // sweeps must answer every query identically to the plain T=1 build with
  // batching disabled (batch=1 runs the reference one-SSAD-per-node
  // pipeline), with the same node-pair count and no enhanced-edge misses.
  OracleFixture fx(40, 97, 600);
  DijkstraSolver serial_solver(*fx.ds->mesh);
  DijkstraSolver parallel_solver(*fx.ds->mesh);
  SeOracleOptions serial;
  serial.epsilon = 0.2;
  serial.seed = 23;
  serial.ssad_batch = 1;
  SeOracleOptions batched = serial;
  const TerrainMesh& mesh = *fx.ds->mesh;
  batched.parallel_solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  batched.num_threads = 8;
  batched.ssad_batch = 4;
  SeBuildStats serial_stats, batched_stats;
  StatusOr<SeOracle> a = SeOracle::Build(mesh, fx.ds->pois, serial_solver,
                                         serial, &serial_stats);
  StatusOr<SeOracle> b = SeOracle::Build(mesh, fx.ds->pois, parallel_solver,
                                         batched, &batched_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(serial_stats.ssad_batch_used, 1u);
  EXPECT_EQ(batched_stats.ssad_batch_used, 4u);
  EXPECT_EQ(batched_stats.threads_used, 8u);
  EXPECT_EQ(batched_stats.distance_fallbacks, 0u);
  EXPECT_EQ(serial_stats.node_pairs, batched_stats.node_pairs);
  EXPECT_EQ(serial_stats.enhanced_edges, batched_stats.enhanced_edges);
  // The batched pipeline sweeps each distinct center once (at its topmost
  // layer) instead of once per tree node.
  EXPECT_LT(batched_stats.enhanced_sweeps, serial_stats.enhanced_sweeps);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*a->Distance(s, t), *b->Distance(s, t)) << s << "," << t;
    }
  }
}

TEST(SeOracle, SsadBatchClampedForSolversWithoutNativeBatching) {
  OracleFixture fx(12, 101);
  SeOracleOptions options;
  options.epsilon = 0.25;
  options.ssad_batch = 8;  // MMP has no native batching: clamps to 1
  SeBuildStats stats;
  SeOracle oracle = fx.BuildOracle(options, &stats);
  EXPECT_EQ(stats.ssad_batch_used, 1u);
  EXPECT_GT(stats.enhanced_sweeps, 0u);
  EXPECT_EQ(*oracle.Distance(0, 0), 0.0);
}

TEST(SeOracleSerde, RoundTripAnswersIdentical) {
  OracleFixture fx(16, 67);
  SeOracleOptions options;
  options.epsilon = 0.1;
  SeOracle oracle = fx.BuildOracle(options);
  const std::string blob = SerializeSeOracle(oracle);
  StatusOr<SeOracle> back = DeserializeSeOracle(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_pois(), oracle.num_pois());
  EXPECT_EQ(back->epsilon(), oracle.epsilon());
  EXPECT_EQ(back->height(), oracle.height());
  const size_t n = oracle.num_pois();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*back->Distance(s, t), *oracle.Distance(s, t));
    }
  }
}

TEST(SeOracleSerde, FileRoundTrip) {
  OracleFixture fx(10, 71);
  SeOracleOptions options;
  SeOracle oracle = fx.BuildOracle(options);
  const std::string path = testing::TempDir() + "/oracle.bin";
  ASSERT_TRUE(SaveSeOracle(oracle, path).ok());
  StatusOr<SeOracle> back = LoadSeOracle(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->Distance(1, 2), *oracle.Distance(1, 2));
}

TEST(SeOracleSerde, CorruptInputRejected) {
  OracleFixture fx(8, 73);
  SeOracleOptions options;
  SeOracle oracle = fx.BuildOracle(options);
  std::string blob = SerializeSeOracle(oracle);
  // Bad magic.
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_FALSE(DeserializeSeOracle(bad).ok());
  // Truncations at many offsets must fail, never crash.
  for (size_t cut : {0ul, 1ul, 8ul, blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(DeserializeSeOracle(blob.substr(0, cut)).ok()) << cut;
  }
  // Trailing garbage.
  EXPECT_FALSE(DeserializeSeOracle(blob + "zz").ok());
}

}  // namespace
}  // namespace tso
