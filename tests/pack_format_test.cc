// The oracle pack path: a PackView over a multi-shard pack must answer
// bit-identically to the monolithic oracle it was built from — for every
// shard count and policy, across the full query surface (Distance / kNN /
// range / batch) — and must fail with a clean Status, never crash, on
// truncated or corrupted input. Sharding partitions only the node-pair set;
// every probe returns the same stored double, so exact equality (==, not
// near) is the correct assertion.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geodesic/dijkstra_solver.h"
#include "oracle/oracle_serde.h"
#include "oracle/pack_format.h"
#include "oracle/pack_view.h"
#include "query/batch.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

struct PackFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<DijkstraSolver> solver;
  std::unique_ptr<SeOracle> oracle;

  PackFixture()
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 24, 7)) {
    TSO_CHECK(ds.ok());
    solver = std::make_unique<DijkstraSolver>(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, *solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));
  }
};

PackFixture& Fixture() {
  static PackFixture* fx = new PackFixture();
  return *fx;
}

std::string Pack(uint32_t shards, PackPolicy policy) {
  PackBuildOptions options;
  options.num_shards = shards;
  options.policy = policy;
  StatusOr<std::string> blob = SerializeOraclePack(*Fixture().oracle, options);
  TSO_CHECK(blob.ok());
  return std::move(*blob);
}

TEST(PackFormat, HeaderAndSectionTableWellFormed) {
  const std::string blob = Pack(3, PackPolicy::kPoiRange);
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.version, kPackFormatVersion);
  EXPECT_EQ(info->header.file_size, blob.size());
  EXPECT_EQ(info->meta.num_shards, 3u);
  EXPECT_EQ(info->meta.policy, static_cast<uint32_t>(PackPolicy::kPoiRange));
  ASSERT_EQ(info->sections.size(), kPackFixedSectionCount + 3u);
  uint64_t prev_end = 0;
  for (const FlatSectionEntry& e : info->sections) {
    EXPECT_EQ(e.offset % kFlatSectionAlign, 0u) << PackSectionName(e.id);
    EXPECT_GE(e.offset, prev_end);
    prev_end = e.offset + e.size;
  }
  EXPECT_EQ(prev_end, blob.size());
}

TEST(PackFormat, Deterministic) {
  EXPECT_EQ(Pack(4, PackPolicy::kGeo), Pack(4, PackPolicy::kGeo));
  EXPECT_NE(Pack(4, PackPolicy::kGeo), Pack(3, PackPolicy::kGeo));
}

TEST(PackFormat, EachShardIsAStandaloneFlatOracle) {
  const std::string blob = Pack(3, PackPolicy::kPoiRange);
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  size_t pairs_total = 0;
  for (uint32_t s = 0; s < info->meta.num_shards; ++s) {
    const FlatSectionEntry& e = info->sections[kPackFixedSectionCount + s];
    const std::string_view shard_bytes =
        std::string_view(blob).substr(e.offset, e.size);
    OracleView::Options verify;
    verify.verify_checksums = true;
    StatusOr<OracleView> shard = OracleView::FromBuffer(shard_bytes, verify);
    ASSERT_TRUE(shard.ok()) << "shard " << s << ": "
                            << shard.status().ToString();
    EXPECT_EQ(shard->num_pois(), Fixture().oracle->num_pois());
    pairs_total += shard->pair_set().size();
  }
  // The pair partition is exhaustive and disjoint.
  EXPECT_EQ(pairs_total, Fixture().oracle->pair_set().size());
}

// The tentpole guarantee: for every shard count and both policies, every
// point-to-point distance through the pack equals the monolithic answer
// bitwise.
TEST(PackFormat, DistancesBitIdenticalToMonolithicAllShardCountsAndPolicies) {
  const SeOracle& oracle = *Fixture().oracle;
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());
  for (const PackPolicy policy : {PackPolicy::kPoiRange, PackPolicy::kGeo}) {
    for (const uint32_t shards : {1u, 2u, 5u, n}) {
      const std::string blob = Pack(shards, policy);
      StatusOr<PackView> pack = PackView::FromBuffer(blob);
      ASSERT_TRUE(pack.ok()) << pack.status().ToString();
      EXPECT_EQ(pack->num_shards(), shards);
      for (uint32_t s = 0; s < n; ++s) {
        for (uint32_t t = 0; t < n; ++t) {
          ASSERT_EQ(*pack->Distance(s, t), *oracle.Distance(s, t))
              << PackPolicyName(policy) << " shards=" << shards << " (" << s
              << "," << t << ")";
        }
      }
    }
  }
}

// Cross-shard kNN / range / batch through the unified query engines: the
// sharded PairSource feeds the same engines, so derived results (including
// tie-breaks) must be byte-identical to the monolithic oracle's.
TEST(PackFormat, KnnRangeBatchBitIdenticalToMonolithic) {
  const SeOracle& oracle = *Fixture().oracle;
  const std::string blob = Pack(4, PackPolicy::kGeo);
  StatusOr<PackView> pack = PackView::FromBuffer(blob);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());

  for (uint32_t q = 0; q < n; ++q) {
    StatusOr<std::vector<KnnResult>> mono = KnnQuery(MakeSource(oracle), q, 5);
    StatusOr<std::vector<KnnResult>> sharded = KnnQuery(MakeSource(*pack), q, 5);
    ASSERT_TRUE(mono.ok());
    ASSERT_TRUE(sharded.ok());
    ASSERT_EQ(mono->size(), sharded->size());
    for (size_t i = 0; i < mono->size(); ++i) {
      EXPECT_EQ((*mono)[i].poi, (*sharded)[i].poi);
      EXPECT_EQ((*mono)[i].distance, (*sharded)[i].distance);
    }

    StatusOr<std::vector<KnnResult>> pruned_mono = KnnQueryPruned(MakeSource(oracle), q, 5);
    StatusOr<std::vector<KnnResult>> pruned_sharded =
        KnnQueryPruned(MakeSource(*pack), q, 5);
    ASSERT_TRUE(pruned_mono.ok());
    ASSERT_TRUE(pruned_sharded.ok());
    ASSERT_EQ(pruned_mono->size(), pruned_sharded->size());
    for (size_t i = 0; i < pruned_mono->size(); ++i) {
      EXPECT_EQ((*pruned_mono)[i].poi, (*pruned_sharded)[i].poi);
      EXPECT_EQ((*pruned_mono)[i].distance, (*pruned_sharded)[i].distance);
    }

    StatusOr<double> probe = oracle.Distance(q, (q + 1) % n);
    ASSERT_TRUE(probe.ok());
    const double radius = *probe * 1.5;
    StatusOr<std::vector<uint32_t>> range_mono = RangeQuery(MakeSource(oracle), q, radius);
    StatusOr<std::vector<uint32_t>> range_sharded =
        RangeQuery(MakeSource(*pack), q, radius);
    ASSERT_TRUE(range_mono.ok());
    ASSERT_TRUE(range_sharded.ok());
    EXPECT_EQ(*range_mono, *range_sharded);
  }

  std::vector<std::pair<uint32_t, uint32_t>> queries;
  for (uint32_t i = 0; i < n; ++i) {
    queries.emplace_back(i, (i * 7 + 3) % n);
  }
  StatusOr<std::vector<double>> batch_mono = DistanceBatch(MakeSource(oracle), queries, 4);
  StatusOr<std::vector<double>> batch_sharded =
      DistanceBatch(MakeSource(*pack), queries, 4);
  ASSERT_TRUE(batch_mono.ok());
  ASSERT_TRUE(batch_sharded.ok());
  EXPECT_EQ(*batch_mono, *batch_sharded);
}

// A shard with no pairs is legal (no pair's first node maps to it): probes
// never route there, so answers are unaffected.
TEST(PackFormat, SingleShardAndMaxShardsEdges) {
  const SeOracle& oracle = *Fixture().oracle;
  // One shard: the pack degenerates to a framed monolithic oracle.
  {
    StatusOr<PackView> pack =
        PackView::FromBuffer(Pack(1, PackPolicy::kPoiRange));
    ASSERT_TRUE(pack.ok());
    EXPECT_EQ(pack->pair_shards()[0].size(), oracle.pair_set().size());
  }
  // Shard count above the POI count is rejected (would guarantee empty
  // shards of POIs, a sign of misconfiguration).
  {
    PackBuildOptions options;
    options.num_shards = static_cast<uint32_t>(oracle.num_pois()) + 1;
    EXPECT_FALSE(SerializeOraclePack(oracle, options).ok());
  }
  {
    PackBuildOptions options;
    options.num_shards = 0;
    EXPECT_FALSE(SerializeOraclePack(oracle, options).ok());
  }
}

TEST(PackFormat, OpenRoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "/pack_roundtrip.tsop";
  PackBuildOptions options;
  options.num_shards = 3;
  ASSERT_TRUE(SaveOraclePack(*Fixture().oracle, options, path).ok());
  PackView::Options verify;
  verify.verify_checksums = true;
  StatusOr<PackView> pack = PackView::Open(path, verify);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();
  EXPECT_EQ(pack->num_shards(), 3u);
  EXPECT_EQ(*pack->Distance(0, 1), *Fixture().oracle->Distance(0, 1));
  std::remove(path.c_str());
}

// Corruption robustness: truncations at every section boundary and byte
// flips inside every section must produce a clean failure (open error or,
// for undetected-by-structure flips without checksum verification, at worst
// a NotFound-style query error) — never a crash. With checksums on, every
// flip is detected at open.
TEST(PackFormat, TruncationFailsCleanly) {
  const std::string blob = Pack(3, PackPolicy::kPoiRange);
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  std::vector<size_t> cuts = {0, sizeof(FlatHeader) / 2, sizeof(FlatHeader)};
  for (const FlatSectionEntry& e : info->sections) {
    cuts.push_back(e.offset);
    cuts.push_back(e.offset + e.size / 2);
  }
  cuts.push_back(blob.size() - 1);
  for (size_t cut : cuts) {
    const std::string truncated = blob.substr(0, cut);
    EXPECT_FALSE(PackView::FromBuffer(truncated).ok()) << "cut=" << cut;
  }
}

TEST(PackFormat, ByteFlipsDetectedWithChecksumsOn) {
  const std::string blob = Pack(2, PackPolicy::kPoiRange);
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  PackView::Options verify;
  verify.verify_checksums = true;
  for (const FlatSectionEntry& e : info->sections) {
    if (e.size == 0) continue;
    std::string corrupt = blob;
    corrupt[e.offset + e.size / 2] ^= 0x40;
    EXPECT_FALSE(PackView::FromBuffer(corrupt, verify).ok())
        << PackSectionName(e.id);
  }
  // Header corruption is caught even without checksums.
  std::string bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(PackView::FromBuffer(bad_magic).ok());
}

// A pack spliced from a different oracle's shard must be rejected by the
// meta cross-check (here: meta tampering detected by the shard count).
TEST(PackFormat, MetaShardCountMismatchRejected) {
  std::string blob = Pack(2, PackPolicy::kPoiRange);
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  // Flip num_shards inside the meta section (the default open skips the
  // per-section checksum pass, so only the cross-check can catch this).
  const FlatSectionEntry& meta_entry = info->sections[0];
  PackMeta meta{};
  std::memcpy(&meta, blob.data() + meta_entry.offset, sizeof(meta));
  meta.num_shards = 3;
  std::memcpy(blob.data() + meta_entry.offset, &meta, sizeof(meta));
  EXPECT_FALSE(PackView::FromBuffer(blob).ok());
}

}  // namespace
}  // namespace tso
