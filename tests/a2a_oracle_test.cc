#include "oracle/a2a_oracle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geodesic/mmp_solver.h"
#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

struct A2AFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<MmpSolver> exact;

  explicit A2AFixture(uint64_t seed = 3, uint32_t vertices = 300)
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, vertices, 10,
                            seed)) {
    TSO_CHECK(ds.ok());
    exact = std::make_unique<MmpSolver>(*ds->mesh);
  }
};

// The A2A oracle composes two approximations (Steiner graph + WSPD), so the
// observable error is bounded by roughly (1+eps_steiner)(1+eps_wspd)-1; we
// check against a generous combined budget and, importantly, that answers
// are valid upper bounds of the exact geodesic distance.
TEST(A2AOracle, ErrorBudgetOnArbitraryPoints) {
  A2AFixture fx(5);
  A2AOracleOptions options;
  options.epsilon = 0.1;
  options.steiner_points_per_edge = 3;
  A2ABuildStats stats;
  StatusOr<A2AOracle> oracle = A2AOracle::Build(*fx.ds->mesh, options, &stats);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_GT(stats.steiner_nodes, fx.ds->mesh->num_vertices());

  Rng rng(11);
  std::vector<SurfacePoint> probes =
      GenerateUniformPois(*fx.ds->mesh, *fx.ds->locator, 8, rng);
  for (size_t i = 0; i < probes.size(); ++i) {
    for (size_t j = i + 1; j < probes.size(); ++j) {
      StatusOr<double> approx = oracle->Distance(probes[i], probes[j]);
      ASSERT_TRUE(approx.ok());
      const double truth =
          fx.exact->PointToPoint(probes[i], probes[j]).value();
      // Upper bound (all paths are realizable) ...
      EXPECT_GE(*approx, truth * (1.0 - options.epsilon) - 1e-9);
      // ... within the combined budget: Steiner density 3 contributes a few
      // percent; WSPD contributes eps.
      EXPECT_LE(*approx, truth * (1.0 + options.epsilon + 0.15) + 1e-9)
          << i << "," << j;
    }
  }
}

TEST(A2AOracle, VertexQueriesWork) {
  A2AFixture fx(7);
  A2AOracleOptions options;
  options.epsilon = 0.2;
  options.steiner_points_per_edge = 2;
  StatusOr<A2AOracle> oracle = A2AOracle::Build(*fx.ds->mesh, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const SurfacePoint s = SurfacePoint::AtVertex(*fx.ds->mesh, 5);
  const SurfacePoint t = SurfacePoint::AtVertex(
      *fx.ds->mesh, static_cast<uint32_t>(fx.ds->mesh->num_vertices() - 3));
  StatusOr<double> d = oracle->Distance(s, t);
  ASSERT_TRUE(d.ok());
  const double truth = fx.exact->PointToPoint(s, t).value();
  EXPECT_GE(*d, truth * 0.9 - 1e-9);
  EXPECT_LE(*d, truth * 1.4 + 1e-9);
}

TEST(A2AOracle, SameFaceShortcut) {
  A2AFixture fx(9);
  A2AOracleOptions options;
  options.epsilon = 0.25;
  options.steiner_points_per_edge = 1;
  StatusOr<A2AOracle> oracle = A2AOracle::Build(*fx.ds->mesh, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  // Two points on the same face: the answer is the exact segment length.
  const uint32_t f = 7;
  const Vec3 c = fx.ds->mesh->FaceCentroid(f);
  const auto& tri = fx.ds->mesh->face(f);
  const Vec3 a = fx.ds->mesh->vertex(tri[0]);
  SurfacePoint p = SurfacePoint::OnFace(f, c);
  SurfacePoint q = SurfacePoint::OnFace(f, (c + a) / 2.0 + (c - a) * 0.01);
  StatusOr<double> d = oracle->Distance(p, q);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, Distance(p.pos, q.pos), 1e-12);
}

TEST(A2AOracle, ServesP2PWhenNGreaterThanN) {
  // Appendix D: with n > N the POI-based oracle is replaced by this
  // POI-independent one; P2P queries route through Distance().
  A2AFixture fx(13, 200);
  A2AOracleOptions options;
  options.epsilon = 0.2;
  options.steiner_points_per_edge = 2;
  StatusOr<A2AOracle> oracle = A2AOracle::Build(*fx.ds->mesh, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  Rng rng(17);
  // More POIs than vertices.
  std::vector<SurfacePoint> pois = GenerateUniformPois(
      *fx.ds->mesh, *fx.ds->locator, fx.ds->mesh->num_vertices() + 50, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t i = rng.Uniform(pois.size());
    const size_t j = rng.Uniform(pois.size());
    if (i == j) continue;
    StatusOr<double> d = oracle->Distance(pois[i], pois[j]);
    ASSERT_TRUE(d.ok());
    const double truth = fx.exact->PointToPoint(pois[i], pois[j]).value();
    EXPECT_LE(std::abs(*d - truth), truth * 0.35 + 1e-9);
  }
}

TEST(A2AOracle, InvalidQueryPointRejected) {
  A2AFixture fx(15);
  A2AOracleOptions options;
  options.steiner_points_per_edge = 1;
  StatusOr<A2AOracle> oracle = A2AOracle::Build(*fx.ds->mesh, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  SurfacePoint bogus;
  EXPECT_FALSE(oracle->Distance(bogus, fx.ds->pois[0]).ok());
}

}  // namespace
}  // namespace tso
