// The batched/SIMD probe pipeline must be invisible in answers: every fast
// path (MixBatch kernels, PerfectHashView::LookupBatch, the candidate-list
// OracleDistance, and the query engines on top) must return bit-identical
// results to the scalar reference at every dispatch level, on monolithic
// views and degraded packs alike, and the deterministic probe counters must
// not depend on the dispatched level. Randomized where it helps (hash
// tables), exhaustive where it's cheap (all-pairs distances).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/histogram.h"
#include "base/perfect_hash.h"
#include "base/probe_stats.h"
#include "base/rng.h"
#include "base/simd.h"
#include "geodesic/dijkstra_solver.h"
#include "oracle/oracle_serde.h"
#include "oracle/oracle_view.h"
#include "oracle/pack_format.h"
#include "oracle/pack_view.h"
#include "query/batch.h"
#include "query/knn.h"
#include "query/range_query.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

/// Dispatch levels actually testable on this machine (under TSO_NO_SIMD=1
/// the list degenerates to {kScalar}, which keeps the SIMD-off CI job
/// meaningful: it asserts the scalar pipeline agrees with itself and the
/// counters still match).
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel max =
      SimdLevelFromEnv(std::getenv("TSO_NO_SIMD"), DetectCpuSimdLevel());
  if (max >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (max >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// Restores the default dispatch level on scope exit so a failing test
/// can't leak a forced level into later tests.
struct LevelGuard {
  ~LevelGuard() { ForceSimdLevelForTest(DetectCpuSimdLevel()); }
};

struct EquivFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<DijkstraSolver> solver;
  std::unique_ptr<SeOracle> oracle;
  std::string flat_blob;
  std::unique_ptr<OracleView> view;
  std::string pack_blob;
  std::unique_ptr<PackView> pack;
  std::string degraded_blob;
  std::unique_ptr<PackView> degraded;

  EquivFixture()
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 24, 13)) {
    TSO_CHECK(ds.ok());
    solver = std::make_unique<DijkstraSolver>(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, *solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));

    flat_blob = SerializeSeOracleFlat(*oracle);
    StatusOr<OracleView> v = OracleView::FromBuffer(flat_blob);
    TSO_CHECK(v.ok());
    view = std::make_unique<OracleView>(std::move(*v));

    PackBuildOptions pack_options;
    pack_options.num_shards = 3;
    StatusOr<std::string> pb = SerializeOraclePack(*oracle, pack_options);
    TSO_CHECK(pb.ok());
    pack_blob = std::move(*pb);
    StatusOr<PackView> p = PackView::FromBuffer(pack_blob);
    TSO_CHECK(p.ok());
    pack = std::make_unique<PackView>(std::move(*p));

    // Deterministic degraded pack: corrupt one byte inside shard 1's blob
    // so the degraded open quarantines exactly that shard.
    StatusOr<PackFileInfo> info = ReadPackFileInfo(pack_blob);
    TSO_CHECK(info.ok());
    degraded_blob = pack_blob;
    bool corrupted = false;
    for (const FlatSectionEntry& e : info->sections) {
      if (e.id == kPackShardBase + 1) {
        degraded_blob[e.offset + e.size / 2] ^= 0x40;
        corrupted = true;
      }
    }
    TSO_CHECK(corrupted);
    PackView::Options degraded_options;
    degraded_options.verify_checksums = true;
    degraded_options.allow_degraded = true;
    StatusOr<PackView> d = PackView::FromBuffer(degraded_blob,
                                                degraded_options);
    TSO_CHECK(d.ok());
    TSO_CHECK(d->num_available() < d->num_shards());
    degraded = std::make_unique<PackView>(std::move(*d));
  }
};

EquivFixture& Fixture() {
  static EquivFixture* fx = new EquivFixture();
  return *fx;
}

TEST(SimdEquivalence, MixBatchMatchesScalarAtEveryLevel) {
  LevelGuard guard;
  Rng rng(101);
  constexpr size_t kN = 257;  // deliberately not a lane multiple
  std::vector<uint64_t> keys(kN), muls(kN), got(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = rng.NextU64();
    muls[i] = rng.NextU64() | 1;
  }
  for (SimdLevel level : TestableLevels()) {
    ForceSimdLevelForTest(level);
    ASSERT_EQ(ActiveSimdLevel(), level);
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                     size_t{8}, kN}) {
      PerfectHashView::MixBatch(keys.data(), muls.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], PerfectHashView::Mix(keys[i], muls[i]))
            << SimdLevelName(level) << " lane " << i;
      }
    }
  }
}

TEST(SimdEquivalence, LookupBatchMatchesScalarAtEveryLevel) {
  LevelGuard guard;
  Rng rng(202);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < 5000; ++i) {
    entries.emplace_back(rng.NextU64(), i);
  }
  StatusOr<PerfectHash> hash = PerfectHash::Build(entries);
  ASSERT_TRUE(hash.ok());
  const PerfectHashView hview = hash->view();

  // Probe a mix of present and absent keys, batch vs scalar, per level.
  std::vector<uint64_t> probe_keys;
  for (size_t i = 0; i < entries.size(); i += 3) {
    probe_keys.push_back(entries[i].first);
    probe_keys.push_back(rng.NextU64());  // almost surely absent
  }
  for (SimdLevel level : TestableLevels()) {
    ForceSimdLevelForTest(level);
    for (size_t i = 0; i < probe_keys.size(); i += kProbeBatchWidth) {
      const size_t n = std::min(kProbeBatchWidth, probe_keys.size() - i);
      uint64_t values[kProbeBatchWidth];
      uint8_t found[kProbeBatchWidth];
      hview.LookupBatch(probe_keys.data() + i, n, values, found);
      for (size_t j = 0; j < n; ++j) {
        uint64_t scalar_value;
        const bool scalar_found =
            hview.Lookup(probe_keys[i + j], &scalar_value);
        ASSERT_EQ(found[j] != 0, scalar_found)
            << SimdLevelName(level) << " key " << probe_keys[i + j];
        if (scalar_found) {
          ASSERT_EQ(values[j], scalar_value);
        }
      }
    }
  }
  // An empty table misses every lane (and must not fault).
  const PerfectHashView empty;
  uint64_t values[kProbeBatchWidth];
  uint8_t found[kProbeBatchWidth];
  empty.LookupBatch(probe_keys.data(), kProbeBatchWidth, values, found);
  for (size_t j = 0; j < kProbeBatchWidth; ++j) EXPECT_EQ(found[j], 0);
}

/// All-pairs Distance at `level`, recorded as (ok, bits-or-code) so error
/// paths (degraded kUnavailable) participate in the equivalence too.
std::vector<std::pair<bool, uint64_t>> DistanceSweep(
    const DistanceSource& source, uint32_t n) {
  std::vector<std::pair<bool, uint64_t>> out;
  QueryScratch scratch;
  out.reserve(static_cast<size_t>(n) * n);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      StatusOr<double> d = source.Distance(s, t, scratch);
      if (d.ok()) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &*d, sizeof(bits));
        out.emplace_back(true, bits);
      } else {
        out.emplace_back(false, static_cast<uint64_t>(d.status().code()));
      }
    }
  }
  return out;
}

TEST(SimdEquivalence, DistanceBitIdenticalAcrossLevelsAndRepresentations) {
  LevelGuard guard;
  EquivFixture& fx = Fixture();
  const uint32_t n = static_cast<uint32_t>(fx.oracle->num_pois());
  const struct {
    const char* name;
    DistanceSource source;
  } sources[] = {
      {"oracle", MakeSource(*fx.oracle)},
      {"view", MakeSource(*fx.view)},
      {"pack", MakeSource(*fx.pack)},
      {"degraded", MakeSource(*fx.degraded)},
  };
  for (const auto& s : sources) {
    ForceSimdLevelForTest(SimdLevel::kScalar);
    const auto reference = DistanceSweep(s.source, n);
    for (SimdLevel level : TestableLevels()) {
      ForceSimdLevelForTest(level);
      EXPECT_EQ(DistanceSweep(s.source, n), reference)
          << s.name << " at " << SimdLevelName(level);
    }
  }
}

TEST(SimdEquivalence, QueryEnginesBitIdenticalAcrossLevels) {
  LevelGuard guard;
  EquivFixture& fx = Fixture();
  const uint32_t n = static_cast<uint32_t>(fx.oracle->num_pois());
  std::vector<std::pair<uint32_t, uint32_t>> queries;
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) queries.emplace_back(s, t);
  }
  for (const DistanceSource& source :
       {MakeSource(*fx.view), MakeSource(*fx.pack)}) {
    // Scalar reference...
    ForceSimdLevelForTest(SimdLevel::kScalar);
    const auto ref_batch = DistanceBatch(source, queries, 1);
    const auto ref_knn = KnnQuery(source, 3, 7);
    const auto ref_pruned = KnnQueryPruned(source, 3, 7);
    const auto ref_range = RangeQuery(source, 5, 900.0);
    ASSERT_TRUE(ref_batch.ok() && ref_knn.ok() && ref_pruned.ok() &&
                ref_range.ok());
    // ...must survive every level, bit for bit.
    for (SimdLevel level : TestableLevels()) {
      ForceSimdLevelForTest(level);
      const auto batch = DistanceBatch(source, queries, 1);
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(*batch, *ref_batch) << SimdLevelName(level);
      const auto knn = KnnQuery(source, 3, 7);
      const auto pruned = KnnQueryPruned(source, 3, 7);
      ASSERT_TRUE(knn.ok() && pruned.ok());
      ASSERT_EQ(knn->size(), ref_knn->size());
      for (size_t i = 0; i < knn->size(); ++i) {
        EXPECT_EQ((*knn)[i].poi, (*ref_knn)[i].poi);
        EXPECT_EQ((*knn)[i].distance, (*ref_knn)[i].distance);
      }
      ASSERT_EQ(pruned->size(), ref_pruned->size());
      for (size_t i = 0; i < pruned->size(); ++i) {
        EXPECT_EQ((*pruned)[i].poi, (*ref_pruned)[i].poi);
        EXPECT_EQ((*pruned)[i].distance, (*ref_pruned)[i].distance);
      }
      const auto range = RangeQuery(source, 5, 900.0);
      ASSERT_TRUE(range.ok());
      EXPECT_EQ(*range, *ref_range) << SimdLevelName(level);
    }
  }
}

TEST(SimdEquivalence, ProbeCountersLevelInvariant) {
  LevelGuard guard;
  EquivFixture& fx = Fixture();
  const uint32_t n = static_cast<uint32_t>(fx.oracle->num_pois());
  auto run = [&](SimdLevel level) {
    ForceSimdLevelForTest(level);
    ProbeCounters counters;
    ProbeCounterScope scope(&counters);
    DistanceSweep(MakeSource(*fx.view), n);
    return counters;
  };
  const ProbeCounters reference = run(SimdLevel::kScalar);
  EXPECT_GT(reference.probes, 0u);
  EXPECT_GT(reference.hits, 0u);
  EXPECT_GT(reference.batches, 0u);
  EXPECT_GT(reference.lanes, 0u);
  EXPECT_GT(reference.prefetches, 0u);
  for (SimdLevel level : TestableLevels()) {
    const ProbeCounters got = run(level);
    EXPECT_EQ(got.probes, reference.probes) << SimdLevelName(level);
    EXPECT_EQ(got.hits, reference.hits) << SimdLevelName(level);
    EXPECT_EQ(got.batches, reference.batches) << SimdLevelName(level);
    EXPECT_EQ(got.lanes, reference.lanes) << SimdLevelName(level);
    EXPECT_EQ(got.prefetches, reference.prefetches) << SimdLevelName(level);
  }
}

TEST(SimdEquivalence, AncestorTableMatchesWalk) {
  EquivFixture& fx = Fixture();
  // The mapped view carries the minor-1 precomputed table; the owning
  // oracle walks. Both must produce the same A_s arrays.
  const CompressedTreeView walk_tree = fx.oracle->tree().view();
  const CompressedTreeView& table_tree = fx.view->tree();
  ASSERT_FALSE(walk_tree.has_ancestor_table());
  ASSERT_TRUE(table_tree.has_ancestor_table());
  std::vector<uint32_t> scratch;
  for (uint32_t p = 0; p < fx.oracle->num_pois(); ++p) {
    const auto row = table_tree.AncestorsOfPoi(p, &scratch);
    std::vector<uint32_t> walked;
    walk_tree.AncestorArray(walk_tree.leaf_of_poi(p), &walked);
    ASSERT_EQ(row.size(), walked.size());
    for (size_t i = 0; i < walked.size(); ++i) {
      EXPECT_EQ(row[i], walked[i]) << "poi " << p << " layer " << i;
    }
  }
}

TEST(SimdEquivalence, EnvOverrideParsing) {
  // TSO_NO_SIMD: unset / empty / "0" leave detection alone; anything else
  // forces scalar. Pure function, no process-environment mutation needed.
  const SimdLevel detected = SimdLevel::kAvx2;
  EXPECT_EQ(SimdLevelFromEnv(nullptr, detected), detected);
  EXPECT_EQ(SimdLevelFromEnv("", detected), detected);
  EXPECT_EQ(SimdLevelFromEnv("0", detected), detected);
  EXPECT_EQ(SimdLevelFromEnv("1", detected), SimdLevel::kScalar);
  EXPECT_EQ(SimdLevelFromEnv("true", detected), SimdLevel::kScalar);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdEquivalence, ForceLevelClampsToDetected) {
  LevelGuard guard;
  const SimdLevel max =
      SimdLevelFromEnv(std::getenv("TSO_NO_SIMD"), DetectCpuSimdLevel());
  ForceSimdLevelForTest(SimdLevel::kAvx2);  // may exceed this machine
  EXPECT_LE(ActiveSimdLevel(), max);
  ForceSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(LatencyHistogram, BucketsArePercentileAccurate) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(99.0), 0u);
  // Identity range: small values are exact.
  for (uint64_t v = 0; v < 64; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 64u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 63u);
  EXPECT_EQ(hist.Percentile(50.0), 31u);
  EXPECT_EQ(hist.Percentile(100.0), 63u);
  // Log range: percentiles within the documented ~3.1% relative error.
  LatencyHistogram big;
  for (uint64_t v = 1; v <= 100000; ++v) big.Record(v);
  const uint64_t p50 = big.Percentile(50.0);
  const uint64_t p99 = big.Percentile(99.0);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.032);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.032);
  EXPECT_GE(p50, 50000u);  // upper-bound representative never understates
  EXPECT_GE(p99, 99000u);
  // Merge is additive.
  LatencyHistogram merged;
  merged.Merge(hist);
  merged.Merge(big);
  EXPECT_EQ(merged.count(), hist.count() + big.count());
  EXPECT_EQ(merged.max(), big.max());
  EXPECT_EQ(merged.min(), hist.min());
}

}  // namespace
}  // namespace tso
