#include "geodesic/steiner_graph.h"

#include <gtest/gtest.h>

#include "base/logging.h"
#include "mesh/mesh_builder.h"

namespace tso {
namespace {

TerrainMesh SmallMesh() {
  StatusOr<TerrainMesh> mesh = MeshFromFunction(
      4, 4, 1.0, [](double x, double y) { return x * y * 0.1; });
  TSO_CHECK(mesh.ok());
  return std::move(*mesh);
}

TEST(SteinerGraph, NodeCount) {
  TerrainMesh mesh = SmallMesh();
  for (uint32_t m : {0u, 1u, 3u, 5u}) {
    StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, m);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->num_nodes(), mesh.num_vertices() + m * mesh.num_edges());
    EXPECT_EQ(g->points_per_edge(), m);
  }
}

TEST(SteinerGraph, VertexNodesAreIdentity) {
  TerrainMesh mesh = SmallMesh();
  StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, 2);
  ASSERT_TRUE(g.ok());
  for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(g->VertexNode(v), v);
    EXPECT_TRUE(g->IsVertexNode(v));
    EXPECT_EQ(g->node_pos(v), mesh.vertex(v));
  }
  EXPECT_FALSE(g->IsVertexNode(static_cast<uint32_t>(mesh.num_vertices())));
}

TEST(SteinerGraph, SteinerPointsOnEdges) {
  TerrainMesh mesh = SmallMesh();
  const uint32_t m = 3;
  StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, m);
  ASSERT_TRUE(g.ok());
  // Every Steiner node lies on its mesh edge segment.
  for (uint32_t e = 0; e < mesh.num_edges(); ++e) {
    const TerrainMesh::Edge& ed = mesh.edge(e);
    const Vec3& a = mesh.vertex(ed.v0);
    const Vec3& b = mesh.vertex(ed.v1);
    for (uint32_t k = 0; k < m; ++k) {
      const uint32_t node =
          static_cast<uint32_t>(mesh.num_vertices() + e * m + k);
      const Vec3& p = g->node_pos(node);
      // Collinearity + inside the segment.
      const double t = (p - a).Dot(b - a) / (b - a).NormSq();
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, 1.0);
      EXPECT_NEAR(Distance(a + (b - a) * t, p), 0.0, 1e-9);
    }
  }
}

TEST(SteinerGraph, FaceNodesComplete) {
  TerrainMesh mesh = SmallMesh();
  const uint32_t m = 2;
  StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, m);
  ASSERT_TRUE(g.ok());
  std::vector<uint32_t> nodes;
  for (uint32_t f = 0; f < mesh.num_faces(); ++f) {
    g->FaceNodes(f, &nodes);
    EXPECT_EQ(nodes.size(), 3u + 3u * m);
    // The three face vertices come first.
    for (int i = 0; i < 3; ++i) EXPECT_EQ(nodes[i], mesh.face(f)[i]);
  }
}

TEST(SteinerGraph, AdjacencySymmetric) {
  TerrainMesh mesh = SmallMesh();
  StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, 2);
  ASSERT_TRUE(g.ok());
  for (uint32_t u = 0; u < g->num_nodes(); ++u) {
    for (const auto& e : g->Neighbors(u)) {
      bool back = false;
      for (const auto& r : g->Neighbors(e.to)) {
        if (r.to == u && r.weight == e.weight) back = true;
      }
      EXPECT_TRUE(back) << u << "->" << e.to;
      EXPECT_GT(e.weight, 0.0);
      EXPECT_NEAR(e.weight, Distance(g->node_pos(u), g->node_pos(e.to)),
                  1e-9);
    }
  }
}

TEST(SteinerGraph, Connected) {
  TerrainMesh mesh = SmallMesh();
  StatusOr<SteinerGraph> g = SteinerGraph::Build(mesh, 1);
  ASSERT_TRUE(g.ok());
  std::vector<bool> seen(g->num_nodes(), false);
  std::vector<uint32_t> stack = {0};
  seen[0] = true;
  size_t count = 0;
  while (!stack.empty()) {
    const uint32_t u = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& e : g->Neighbors(u)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  EXPECT_EQ(count, g->num_nodes());
}

TEST(SteinerGraph, DensityFromEpsilonMonotone) {
  EXPECT_GE(SteinerGraph::PointsPerEdgeForEpsilon(0.05),
            SteinerGraph::PointsPerEdgeForEpsilon(0.25));
  EXPECT_GE(SteinerGraph::PointsPerEdgeForEpsilon(0.01), 1u);
  EXPECT_LE(SteinerGraph::PointsPerEdgeForEpsilon(0.001), 10u);  // capped
}

TEST(SteinerGraph, SizeBytesGrowsWithDensity) {
  TerrainMesh mesh = SmallMesh();
  StatusOr<SteinerGraph> g1 = SteinerGraph::Build(mesh, 1);
  StatusOr<SteinerGraph> g4 = SteinerGraph::Build(mesh, 4);
  ASSERT_TRUE(g1.ok() && g4.ok());
  EXPECT_GT(g4->SizeBytes(), g1->SizeBytes());
  EXPECT_GT(g4->num_graph_edges(), g1->num_graph_edges());
}

}  // namespace
}  // namespace tso
