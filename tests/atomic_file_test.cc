// Crash-safe artifact publication: WriteFileAtomic must leave either the
// complete old file or the complete new file at the destination, for every
// failure stage of its write protocol. Failures are injected at each of the
// protocol's failpoint seams; the fork-and-abort variants live in
// crash_harness_test.cc.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/atomic_file.h"
#include "base/failpoint.h"

namespace tso {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool Exists(const std::string& path) {
  return std::ifstream(path).good();
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    path_ = ::testing::TempDir() + "/atomic_file_test.bin";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(AtomicFileTest, WritesFreshFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, "hello atomic world").ok());
  EXPECT_EQ(ReadAll(path_), "hello atomic world");
  EXPECT_FALSE(Exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, OverwritesExistingFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, "version one").ok());
  ASSERT_TRUE(WriteFileAtomic(path_, "version two, longer than one").ok());
  EXPECT_EQ(ReadAll(path_), "version two, longer than one");
  ASSERT_TRUE(WriteFileAtomic(path_, "v3").ok());  // shrink too
  EXPECT_EQ(ReadAll(path_), "v3");
}

TEST_F(AtomicFileTest, WritesEmptyPayload) {
  ASSERT_TRUE(WriteFileAtomic(path_, "").ok());
  EXPECT_TRUE(Exists(path_));
  EXPECT_EQ(ReadAll(path_), "");
}

TEST_F(AtomicFileTest, RelativePathWithoutDirectoryComponent) {
  // Exercises the "." parent-directory fsync branch.
  const std::string name = "atomic_file_test_cwd.bin";
  ASSERT_TRUE(WriteFileAtomic(name, "cwd bytes").ok());
  EXPECT_EQ(ReadAll(name), "cwd bytes");
  std::remove(name.c_str());
}

// The core contract: a failure at any stage before the rename leaves the
// old file byte-identical and cleans up the temp file.
TEST_F(AtomicFileTest, FailureBeforeRenamePreservesOldFile) {
  const std::string old_bytes = "the previous, durable artifact";
  ASSERT_TRUE(WriteFileAtomic(path_, old_bytes).ok());

  for (const char* stage : {"atomicfile.open", "atomicfile.write",
                            "atomicfile.fsync", "atomicfile.rename"}) {
    SCOPED_TRACE(stage);
    ASSERT_TRUE(failpoint::Arm(stage, "error").ok());
    const Status failed = WriteFileAtomic(path_, "half-written replacement");
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_NE(failed.message().find(stage), std::string::npos);
    EXPECT_EQ(ReadAll(path_), old_bytes);
    EXPECT_FALSE(Exists(path_ + ".tmp"));  // no litter
    failpoint::Disarm(stage);
  }

  // Disarmed again, the same write goes through.
  ASSERT_TRUE(WriteFileAtomic(path_, "replacement lands").ok());
  EXPECT_EQ(ReadAll(path_), "replacement lands");
}

// The documented exception: a failure syncing the parent directory happens
// after the rename, so the new file is already visible — the error tells
// the caller durability is not yet guaranteed, not that the write was lost.
TEST_F(AtomicFileTest, DirSyncFailureLeavesNewFileVisible) {
  ASSERT_TRUE(WriteFileAtomic(path_, "old").ok());
  ASSERT_TRUE(failpoint::Arm("atomicfile.dirsync", "error").ok());
  const Status failed = WriteFileAtomic(path_, "new");
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path_), "new");
  failpoint::Disarm("atomicfile.dirsync");
}

}  // namespace
}  // namespace tso
