#include "mesh/terrain_mesh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mesh/mesh_builder.h"
#include "mesh/refine.h"

namespace tso {
namespace {

StatusOr<TerrainMesh> TwoTriangleSquare() {
  return TerrainMesh::FromSoup({{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}},
                               {{0, 1, 2}, {0, 2, 3}});
}

TEST(TerrainMesh, CountsAndAccessors) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->num_vertices(), 4u);
  EXPECT_EQ(mesh->num_faces(), 2u);
  EXPECT_EQ(mesh->num_edges(), 5u);
  EXPECT_TRUE(mesh->Validate().ok());
}

TEST(TerrainMesh, RejectsEmpty) {
  EXPECT_FALSE(TerrainMesh::FromSoup({}, {}).ok());
  EXPECT_FALSE(TerrainMesh::FromSoup({{0, 0, 0}}, {}).ok());
}

TEST(TerrainMesh, RejectsBadIndices) {
  EXPECT_FALSE(
      TerrainMesh::FromSoup({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {{0, 1, 5}})
          .ok());
}

TEST(TerrainMesh, RejectsRepeatedVertexInFace) {
  EXPECT_FALSE(
      TerrainMesh::FromSoup({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {{0, 1, 1}})
          .ok());
}

TEST(TerrainMesh, RejectsDegenerateFace) {
  EXPECT_FALSE(TerrainMesh::FromSoup(
                   {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}}, {{0, 1, 2}})
                   .ok());
}

TEST(TerrainMesh, RejectsNonManifoldEdge) {
  // Three faces sharing edge (0,1).
  EXPECT_FALSE(TerrainMesh::FromSoup({{0, 0, 0},
                                      {1, 0, 0},
                                      {0, 1, 0},
                                      {0, -1, 0},
                                      {0, 0, 1}},
                                     {{0, 1, 2}, {0, 1, 3}, {0, 1, 4}})
                   .ok());
}

TEST(TerrainMesh, RejectsIsolatedVertex) {
  EXPECT_FALSE(TerrainMesh::FromSoup(
                   {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {9, 9, 9}}, {{0, 1, 2}})
                   .ok());
}

TEST(TerrainMesh, EdgeAdjacency) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  const uint32_t diag = mesh->edge_between(0, 2);
  ASSERT_NE(diag, kInvalidId);
  const TerrainMesh::Edge& e = mesh->edge(diag);
  EXPECT_NE(e.f0, kInvalidId);
  EXPECT_NE(e.f1, kInvalidId);
  EXPECT_NE(e.f0, e.f1);
  EXPECT_EQ(mesh->other_face(diag, e.f0), e.f1);
  EXPECT_EQ(mesh->other_face(diag, e.f1), e.f0);
  // Boundary edge has one face.
  const uint32_t boundary = mesh->edge_between(0, 1);
  ASSERT_NE(boundary, kInvalidId);
  EXPECT_EQ(mesh->edge(boundary).f1, kInvalidId);
  EXPECT_EQ(mesh->edge_between(1, 3), kInvalidId);  // not an edge
}

TEST(TerrainMesh, OppositeVertex) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  const uint32_t diag = mesh->edge_between(0, 2);
  const TerrainMesh::Edge& e = mesh->edge(diag);
  const uint32_t a = mesh->opposite_vertex(e.f0, diag);
  const uint32_t b = mesh->opposite_vertex(e.f1, diag);
  EXPECT_TRUE((a == 1 && b == 3) || (a == 3 && b == 1));
}

TEST(TerrainMesh, VertexStars) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->vertex_edges(0).size(), 3u);  // 0-1, 0-2, 0-3
  EXPECT_EQ(mesh->vertex_faces(0).size(), 2u);
  EXPECT_EQ(mesh->vertex_faces(1).size(), 1u);
}

TEST(TerrainMesh, GeometryDerived) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  EXPECT_NEAR(mesh->TotalArea(), 1.0, 1e-12);
  EXPECT_NEAR(mesh->FaceArea(0), 0.5, 1e-12);
  EXPECT_NEAR(mesh->MinInnerAngle(), M_PI / 4.0, 1e-12);
  EXPECT_NEAR(mesh->MinEdgeLength(), 1.0, 1e-12);
  EXPECT_NEAR(mesh->MaxEdgeLength(), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(mesh->VertexAngleSum(0), M_PI / 2.0, 1e-12);
  EXPECT_TRUE(mesh->IsBoundaryVertex(0));
}

TEST(TerrainMesh, BoundingBox) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->bounding_box().min, Vec3(0, 0, 0));
  EXPECT_EQ(mesh->bounding_box().max, Vec3(1, 1, 0));
}

TEST(GridBuilder, TriangulatesDem) {
  GridDem dem;
  dem.width = 4;
  dem.height = 3;
  dem.cell = 2.0;
  dem.z = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  StatusOr<TerrainMesh> mesh = TriangulateDem(dem);
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->num_vertices(), 12u);
  EXPECT_EQ(mesh->num_faces(), 2u * 3 * 2);
  EXPECT_TRUE(mesh->Validate().ok());
  // Euler check for a disk-topology mesh: V - E + F = 1.
  EXPECT_EQ(static_cast<int>(mesh->num_vertices()) -
                static_cast<int>(mesh->num_edges()) +
                static_cast<int>(mesh->num_faces()),
            1);
}

TEST(GridBuilder, RejectsTinyOrInconsistent) {
  GridDem dem;
  dem.width = 1;
  dem.height = 3;
  dem.z = {0, 0, 0};
  EXPECT_FALSE(TriangulateDem(dem).ok());
  dem.width = 2;
  dem.height = 2;
  dem.z = {0, 0, 0};  // wrong size
  EXPECT_FALSE(TriangulateDem(dem).ok());
}

TEST(GridBuilder, FromFunction) {
  StatusOr<TerrainMesh> mesh = MeshFromFunction(
      5, 5, 1.0, [](double x, double y) { return x + y; });
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->num_vertices(), 25u);
  // Vertex 0 at origin, height 0; last vertex at (4,4), height 8.
  EXPECT_DOUBLE_EQ(mesh->vertex(0).z, 0.0);
  EXPECT_DOUBLE_EQ(mesh->vertex(24).z, 8.0);
}

TEST(Refine, CentroidSplitTriplesFaces) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  StatusOr<TerrainMesh> refined = RefineCentroid(*mesh);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined->num_faces(), 6u);
  EXPECT_EQ(refined->num_vertices(), 6u);
  EXPECT_NEAR(refined->TotalArea(), mesh->TotalArea(), 1e-12);
  EXPECT_TRUE(refined->Validate().ok());
}

TEST(Refine, Rounds) {
  StatusOr<TerrainMesh> mesh = TwoTriangleSquare();
  ASSERT_TRUE(mesh.ok());
  StatusOr<TerrainMesh> r2 = RefineCentroidRounds(*mesh, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_faces(), 18u);
  StatusOr<TerrainMesh> r0 = RefineCentroidRounds(*mesh, 0);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->num_faces(), 2u);
}

}  // namespace
}  // namespace tso
