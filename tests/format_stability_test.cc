// Format-stability gate: the on-disk oracle formats are frozen contracts.
// Golden files (tests/golden/, generated once with
//   tso build-oracle --dataset sf-small --vertices 150 --pois 12 \
//     --solver dijkstra --epsilon 0.25 --seed 7 --format flat|legacy)
// are loaded and re-serialized; any byte difference means the format
// changed and kFlatFormatVersion (or the legacy version) must be bumped and
// the goldens regenerated. Loading + re-serializing involves no floating-
// point computation, so these comparisons are exact on every platform. The
// CI `format-stability` job runs this suite as a blocking gate.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "oracle/flat_format.h"
#include "oracle/oracle_serde.h"
#include "oracle/oracle_view.h"

#ifndef TSO_GOLDEN_DIR
#define TSO_GOLDEN_DIR "tests/golden"
#endif

namespace tso {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string GoldenFlat() {
  return ReadFile(std::string(TSO_GOLDEN_DIR) + "/oracle-v1.tsoflat");
}
std::string GoldenLegacy() {
  return ReadFile(std::string(TSO_GOLDEN_DIR) + "/oracle-v1.seor");
}

TEST(FormatStability, GoldenFlatOpensAndValidates) {
  const std::string blob = GoldenFlat();
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(LooksLikeFlatOracle(blob));
  StatusOr<OracleView> view = OracleView::FromBuffer(blob);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->num_pois(), 12u);
  EXPECT_DOUBLE_EQ(view->epsilon(), 0.25);
  EXPECT_EQ(view->height(), 3);
  EXPECT_EQ(view->pair_set().size(), 144u);
  EXPECT_TRUE(view->tree().CheckInvariants().ok());
}

TEST(FormatStability, GoldenFlatRoundTripsByteIdentically) {
  const std::string blob = GoldenFlat();
  ASSERT_FALSE(blob.empty());
  StatusOr<SeOracle> oracle = MaterializeSeOracle(blob);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const std::string reserialized = SerializeSeOracleFlat(*oracle);
  ASSERT_EQ(reserialized.size(), blob.size())
      << "flat format layout drifted — bump kFlatFormatVersion and "
         "regenerate tests/golden/";
  EXPECT_EQ(reserialized, blob)
      << "flat format bytes drifted — bump kFlatFormatVersion and "
         "regenerate tests/golden/";
}

TEST(FormatStability, GoldenLegacyRoundTripsByteIdentically) {
  const std::string blob = GoldenLegacy();
  ASSERT_FALSE(blob.empty());
  StatusOr<SeOracle> oracle = DeserializeSeOracle(blob);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(SerializeSeOracle(*oracle), blob)
      << "legacy format bytes drifted — bump its version and regenerate "
         "tests/golden/";
}

TEST(FormatStability, GoldenFormatsAgreeOnEveryQuery) {
  // The two golden files were built from the same oracle: the mapped flat
  // view and the deserialized legacy oracle must agree bit-for-bit on every
  // distance (queries only read stored doubles — no FP arithmetic — so
  // exact equality is portable).
  const std::string flat = GoldenFlat();
  const std::string legacy = GoldenLegacy();
  StatusOr<OracleView> view = OracleView::FromBuffer(flat);
  StatusOr<SeOracle> oracle = DeserializeSeOracle(legacy);
  ASSERT_TRUE(view.ok() && oracle.ok());
  ASSERT_EQ(view->num_pois(), oracle->num_pois());
  const uint32_t n = static_cast<uint32_t>(oracle->num_pois());
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*view->Distance(s, t), *oracle->Distance(s, t))
          << s << "," << t;
    }
  }
}

TEST(FormatStability, GoldenSpotChecksMatchRecordedValues) {
  // Values recorded at golden-generation time (printed by `tso query`).
  // They are stored doubles read back verbatim; the 1e-6 tolerance only
  // absorbs the print rounding of the recorded literals.
  const std::string blob = GoldenFlat();  // must outlive the view
  StatusOr<OracleView> view = OracleView::FromBuffer(blob);
  ASSERT_TRUE(view.ok());
  EXPECT_NEAR(*view->Distance(0, 1), 782.040311, 1e-6);
  EXPECT_NEAR(*view->Distance(2, 9), 1306.800491, 1e-6);
  EXPECT_NEAR(*view->Distance(3, 7), 1636.347612, 1e-6);
  EXPECT_NEAR(*view->Distance(11, 4), 1089.404627, 1e-6);
  EXPECT_NEAR(*view->Distance(10, 6), 1082.123295, 1e-6);
  EXPECT_EQ(*view->Distance(5, 5), 0.0);
}

TEST(FormatStability, FreshBuildSaveLoadSaveIsByteStable) {
  // Independent of the goldens: any oracle serialized, materialized, and
  // re-serialized must be byte-stable in both formats.
  const std::string flat = GoldenFlat();
  StatusOr<SeOracle> oracle = MaterializeSeOracle(flat);
  ASSERT_TRUE(oracle.ok());
  const std::string legacy_blob = SerializeSeOracle(*oracle);
  StatusOr<SeOracle> via_legacy = DeserializeSeOracle(legacy_blob);
  ASSERT_TRUE(via_legacy.ok());
  // Cross-format: legacy round-trip preserves the flat bytes too.
  EXPECT_EQ(SerializeSeOracleFlat(*via_legacy), flat);
  EXPECT_EQ(SerializeSeOracle(*via_legacy), legacy_blob);
}

}  // namespace
}  // namespace tso
