// Format-stability gate: the on-disk oracle formats are frozen contracts.
// Golden files (tests/golden/) are loaded and re-serialized; any byte
// difference means the format changed and kFlatFormatVersion /
// kFlatFormatMinorVersion (or the legacy version) must be bumped and the
// goldens regenerated. Loading + re-serializing involves no floating-point
// computation, so these comparisons are exact on every platform. The CI
// `format-stability` job runs this suite as a blocking gate.
//
// Two flat goldens are checked in:
//   oracle-v1.tsoflat    minor 0 (10 sections, no ancestor table) —
//     generated once with `tso build-oracle --dataset sf-small
//     --vertices 150 --pois 12 --solver dijkstra --epsilon 0.25 --seed 7
//     --format flat`
//     It is the backward-compatibility gate: current readers must keep
//     opening and answering from it forever (within major version 1).
//   oracle-v1.1.tsoflat  minor 1 (11 sections, + ancestors) — the same
//     oracle re-serialized by the current writer (materialize + serialize,
//     no FP). It is the byte-identity gate for what the writer emits today.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "oracle/flat_format.h"
#include "oracle/oracle_serde.h"
#include "oracle/oracle_view.h"

#ifndef TSO_GOLDEN_DIR
#define TSO_GOLDEN_DIR "tests/golden"
#endif

namespace tso {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string GoldenFlatMinor0() {
  return ReadFile(std::string(TSO_GOLDEN_DIR) + "/oracle-v1.tsoflat");
}
std::string GoldenFlatMinor1() {
  return ReadFile(std::string(TSO_GOLDEN_DIR) + "/oracle-v1.1.tsoflat");
}
std::string GoldenLegacy() {
  return ReadFile(std::string(TSO_GOLDEN_DIR) + "/oracle-v1.seor");
}

void ExpectGoldenShape(const OracleView& view) {
  EXPECT_EQ(view.num_pois(), 12u);
  EXPECT_DOUBLE_EQ(view.epsilon(), 0.25);
  EXPECT_EQ(view.height(), 3);
  EXPECT_EQ(view.pair_set().size(), 144u);
  EXPECT_TRUE(view.tree().CheckInvariants().ok());
}

TEST(FormatStability, GoldenMinor0StillOpensAndValidates) {
  // The backward-compat contract: a file written before the ancestor table
  // existed keeps opening (walk path, no table).
  const std::string blob = GoldenFlatMinor0();
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(LooksLikeFlatOracle(blob));
  StatusOr<FlatFileInfo> info = ReadFlatFileInfo(blob);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->header.minor_version, 0u);
  ASSERT_EQ(info->sections.size(), kFlatSectionCount);
  StatusOr<OracleView> view = OracleView::FromBuffer(blob);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->tree().has_ancestor_table());
  ExpectGoldenShape(*view);
}

TEST(FormatStability, GoldenMinor1OpensAndValidates) {
  const std::string blob = GoldenFlatMinor1();
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(LooksLikeFlatOracle(blob));
  StatusOr<FlatFileInfo> info = ReadFlatFileInfo(blob);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->header.minor_version, 1u);
  ASSERT_EQ(info->sections.size(), kFlatSectionCountMinor1);
  StatusOr<OracleView> view = OracleView::FromBuffer(blob);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->tree().has_ancestor_table());
  ExpectGoldenShape(*view);
}

TEST(FormatStability, CurrentWriterMatchesMinor1GoldenByteForByte) {
  // Materializing EITHER golden and re-serializing must reproduce the
  // minor-1 golden exactly: the writer always emits the current minor
  // version, and materialization drops the (recomputable) ancestor table.
  const std::string minor1 = GoldenFlatMinor1();
  ASSERT_FALSE(minor1.empty());
  for (const std::string& blob : {GoldenFlatMinor0(), minor1}) {
    StatusOr<SeOracle> oracle = MaterializeSeOracle(blob);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    const std::string reserialized = SerializeSeOracleFlat(*oracle);
    ASSERT_EQ(reserialized.size(), minor1.size())
        << "flat format layout drifted — bump kFlatFormatMinorVersion (or "
           "the major version) and regenerate tests/golden/";
    EXPECT_EQ(reserialized, minor1)
        << "flat format bytes drifted — bump kFlatFormatMinorVersion (or "
           "the major version) and regenerate tests/golden/";
  }
}

TEST(FormatStability, GoldenLegacyRoundTripsByteIdentically) {
  const std::string blob = GoldenLegacy();
  ASSERT_FALSE(blob.empty());
  StatusOr<SeOracle> oracle = DeserializeSeOracle(blob);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(SerializeSeOracle(*oracle), blob)
      << "legacy format bytes drifted — bump its version and regenerate "
         "tests/golden/";
}

TEST(FormatStability, GoldenFormatsAgreeOnEveryQuery) {
  // All three golden files hold the same oracle: both mapped flat minors
  // (walk path vs ancestor-table path) and the deserialized legacy oracle
  // must agree bit-for-bit on every distance (queries only read stored
  // doubles — no FP arithmetic — so exact equality is portable).
  const std::string minor0 = GoldenFlatMinor0();
  const std::string minor1 = GoldenFlatMinor1();
  const std::string legacy = GoldenLegacy();
  StatusOr<OracleView> v0 = OracleView::FromBuffer(minor0);
  StatusOr<OracleView> v1 = OracleView::FromBuffer(minor1);
  StatusOr<SeOracle> oracle = DeserializeSeOracle(legacy);
  ASSERT_TRUE(v0.ok() && v1.ok() && oracle.ok());
  ASSERT_EQ(v0->num_pois(), oracle->num_pois());
  ASSERT_EQ(v1->num_pois(), oracle->num_pois());
  const uint32_t n = static_cast<uint32_t>(oracle->num_pois());
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      const double expected = *oracle->Distance(s, t);
      EXPECT_EQ(*v0->Distance(s, t), expected) << s << "," << t;
      EXPECT_EQ(*v1->Distance(s, t), expected) << s << "," << t;
    }
  }
}

TEST(FormatStability, GoldenSpotChecksMatchRecordedValues) {
  // Values recorded at golden-generation time (printed by `tso query`).
  // They are stored doubles read back verbatim; the 1e-6 tolerance only
  // absorbs the print rounding of the recorded literals. Checked on both
  // flat minors so the ancestor-table path answers the same recorded
  // numbers as the walk path.
  for (const std::string& blob : {GoldenFlatMinor0(), GoldenFlatMinor1()}) {
    StatusOr<OracleView> view = OracleView::FromBuffer(blob);
    ASSERT_TRUE(view.ok());
    EXPECT_NEAR(*view->Distance(0, 1), 782.040311, 1e-6);
    EXPECT_NEAR(*view->Distance(2, 9), 1306.800491, 1e-6);
    EXPECT_NEAR(*view->Distance(3, 7), 1636.347612, 1e-6);
    EXPECT_NEAR(*view->Distance(11, 4), 1089.404627, 1e-6);
    EXPECT_NEAR(*view->Distance(10, 6), 1082.123295, 1e-6);
    EXPECT_EQ(*view->Distance(5, 5), 0.0);
  }
}

TEST(FormatStability, FreshBuildSaveLoadSaveIsByteStable) {
  // Independent of which golden seeded it: any oracle serialized,
  // materialized, and re-serialized must be byte-stable in both formats.
  const std::string flat = GoldenFlatMinor1();
  StatusOr<SeOracle> oracle = MaterializeSeOracle(flat);
  ASSERT_TRUE(oracle.ok());
  const std::string legacy_blob = SerializeSeOracle(*oracle);
  StatusOr<SeOracle> via_legacy = DeserializeSeOracle(legacy_blob);
  ASSERT_TRUE(via_legacy.ok());
  // Cross-format: legacy round-trip preserves the flat bytes too.
  EXPECT_EQ(SerializeSeOracleFlat(*via_legacy), flat);
  EXPECT_EQ(SerializeSeOracle(*via_legacy), legacy_blob);
}

}  // namespace
}  // namespace tso
