// Robustness and failure-injection tests across modules: corrupted oracle
// blobs must fail cleanly, the wire-frame decoder must survive arbitrary
// bytes, injected socket faults must surface as clean errors, loggers must
// honor levels, and degenerate inputs must be rejected rather than crash.

#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/timer.h"
#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "oracle/oracle_serde.h"
#include "oracle/pack_view.h"
#include "oracle/se_oracle.h"
#include "serve/engine.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

TEST(SerdeFuzz, RandomByteFlipsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 10, 3);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.2;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);

  Rng rng(99);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = blob;
    const size_t pos = rng.Uniform(corrupt.size());
    corrupt[pos] = static_cast<char>(rng.NextU64());
    StatusOr<SeOracle> loaded = DeserializeSeOracle(corrupt);
    // Either a clean error, or — if the flip hit a distance payload or a
    // redundant byte — a structurally valid oracle. Never a crash.
    if (loaded.ok()) {
      ++accepted;
      // Structure must still answer in-range queries without aborting.
      (void)loaded->Distance(0, 1);
    }
  }
  // Most flips land in structural fields and must be rejected... but flips
  // into double payloads are legitimately accepted; just require that a
  // decent fraction is caught.
  EXPECT_LT(accepted, 200);
}

TEST(SerdeFuzz, RandomTruncationsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 8, 5);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(DeserializeSeOracle(blob.substr(0, cut)).ok());
  }
}

/// Shared corpus for the mapped-format fuzz suites: one oracle, its flat
/// serialization, and a 4-shard pack of it.
struct FuzzCorpus {
  std::unique_ptr<SeOracle> oracle;
  std::string flat;
  std::string pack;

  FuzzCorpus() {
    StatusOr<Dataset> ds =
        MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 16, 4);
    TSO_CHECK(ds.ok());
    DijkstraSolver solver(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));
    flat = SerializeSeOracleFlat(*oracle);
    PackBuildOptions pack_options;
    pack_options.num_shards = 4;
    StatusOr<std::string> packed = SerializeOraclePack(*oracle, pack_options);
    TSO_CHECK(packed.ok());
    pack = *packed;
  }
};

FuzzCorpus& Corpus() {
  static FuzzCorpus* corpus = new FuzzCorpus();
  return *corpus;
}

TEST(FlatFuzz, RandomByteFlipsNeverCrash) {
  const std::string& blob = Corpus().flat;
  OracleView::Options verify;
  verify.verify_checksums = true;
  Rng rng(17);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<OracleView> view = OracleView::FromBuffer(corrupt, verify);
    if (view.ok()) {
      // With checksums on, an accepted flip landed in unprotected padding:
      // queries must be exact, and must not crash.
      ++accepted;
      EXPECT_EQ(*view->Distance(0, 1), *Corpus().oracle->Distance(0, 1));
    }
  }
  // Almost the whole file is covered by a section or table CRC.
  EXPECT_LT(accepted, 300);
}

TEST(FlatFuzz, SectionTableFlipsAreAlwaysRejected) {
  const std::string& blob = Corpus().flat;
  StatusOr<FlatFileInfo> info = ReadFlatFileInfo(blob);
  ASSERT_TRUE(info.ok());
  const size_t table_begin = sizeof(FlatHeader);
  const size_t table_end =
      table_begin + info->sections.size() * sizeof(FlatSectionEntry);
  // Every single-byte flip inside the section table must be caught by the
  // header's table CRC — even without the checksum option (it guards the
  // structural metadata every open depends on).
  for (size_t pos = table_begin; pos < table_end; pos += 3) {
    std::string corrupt = blob;
    corrupt[pos] ^= 0x01;
    EXPECT_FALSE(OracleView::FromBuffer(corrupt).ok()) << "offset " << pos;
  }
}

TEST(FlatFuzz, RandomTruncationsNeverCrash) {
  const std::string& blob = Corpus().flat;
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(OracleView::FromBuffer(blob.substr(0, cut)).ok());
  }
}

TEST(PackFuzz, RandomByteFlipsNeverCrash) {
  const std::string& blob = Corpus().pack;
  PackView::Options verify;
  verify.verify_checksums = true;
  Rng rng(31);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<PackView> view = PackView::FromBuffer(corrupt, verify);
    if (view.ok()) {
      ++accepted;
      EXPECT_EQ(*view->Distance(0, 1), *Corpus().oracle->Distance(0, 1));
    }
  }
  EXPECT_LT(accepted, 300);
}

TEST(PackFuzz, DegradedOpenNeverCrashesAndNeverLies) {
  const std::string& blob = Corpus().pack;
  const SeOracle& oracle = *Corpus().oracle;
  PackView::Options degraded;
  degraded.verify_checksums = true;
  degraded.allow_degraded = true;
  Rng rng(37);
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<PackView> view = PackView::FromBuffer(corrupt, degraded);
    if (!view.ok()) continue;  // frame/routing damage: clean rejection
    // An accepted degraded open must answer every query either bit-exactly
    // or with an honest kUnavailable — a wrong answer is the one forbidden
    // outcome.
    for (uint32_t q = 0; q < 8; ++q) {
      const uint32_t s = (q * 5) % n;
      const uint32_t t = (q * 11 + 3) % n;
      StatusOr<double> got = view->Distance(s, t);
      if (got.ok()) {
        // Rescued probes answer from the reverse-orientation record, which
        // may differ in final ulps (opposite SSAD sources).
        const double truth = *oracle.Distance(s, t);
        EXPECT_NEAR(*got, truth, 1e-9 * (1.0 + truth)) << s << "," << t;
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
            << got.status().ToString();
      }
    }
  }
}

TEST(PackFuzz, RoutingSectionFlipsAreSafe) {
  const std::string& blob = Corpus().pack;
  const SeOracle& oracle = *Corpus().oracle;
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  // Find the node-routing section; flips inside it are the nastiest case —
  // they redirect probes rather than corrupt payloads.
  const FlatSectionEntry* routing = nullptr;
  for (const FlatSectionEntry& section : info->sections) {
    if (section.id == kPackShardOfNode) routing = &section;
  }
  ASSERT_NE(routing, nullptr);
  Rng rng(41);
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());
  for (int trial = 0; trial < 100; ++trial) {
    std::string corrupt = blob;
    corrupt[routing->offset + rng.Uniform(routing->size)] ^=
        static_cast<char>(1 + rng.Uniform(255));
    // Opened without checksums, so the flip reaches the query path: a
    // misrouted probe may miss (shards are disjoint — it can never hit a
    // wrong record), so the answer is exact or an error, never silently
    // wrong.
    StatusOr<PackView> view = PackView::FromBuffer(corrupt);
    if (!view.ok()) continue;  // structural routing validation caught it
    for (uint32_t q = 0; q < 8; ++q) {
      const uint32_t s = (q * 7) % n;
      const uint32_t t = (q * 3 + 1) % n;
      StatusOr<double> got = view->Distance(s, t);
      if (got.ok()) {
        EXPECT_EQ(*got, *oracle.Distance(s, t)) << s << "," << t;
      }
    }
  }
}

TEST(PackFuzz, RandomTruncationsNeverCrash) {
  const std::string& blob = Corpus().pack;
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(PackView::FromBuffer(blob.substr(0, cut)).ok());
  }
}

// ---------------------------------------------------------------------------
// Wire-frame decoder fuzz: DecodeFrame + ParseRequest/ParseResponse face a
// hostile byte stream at the trust boundary of the tsod server. Arbitrary
// bytes must produce kFrame/kNeedMore/kError — never a crash, never an
// unbounded allocation. CI runs these under ASan/UBSan and in the
// fault-injection job.

TEST(WireFuzz, RandomHeadersNeverCrash) {
  Rng rng(51);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string bytes(sizeof(WireHeader) + rng.Uniform(64), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextU64());
    WireFrame frame;
    size_t needed = 0;
    Status error;
    DecodeResult result = DecodeFrame(bytes, &frame, &needed, &error);
    if (result == DecodeResult::kFrame) {
      // Structurally valid by luck: payload parsing must also be safe.
      (void)ParseRequest(frame);
      (void)ParseResponse(frame);
    } else if (result == DecodeResult::kError) {
      EXPECT_FALSE(error.ok());
    } else {
      EXPECT_GT(needed, bytes.size());
    }
  }
}

TEST(WireFuzz, ByteFlipsOnValidFramesNeverCrash) {
  std::vector<std::string> corpus;
  {
    std::string bytes;
    AppendDistanceRequest(&bytes, 1, 3, 9, 500);
    corpus.push_back(bytes);
    bytes.clear();
    AppendBatchRequest(&bytes, 2, {{0, 1}, {2, 3}, {4, 5}}, 0);
    corpus.push_back(bytes);
    bytes.clear();
    AppendKnnRequest(&bytes, 3, 7, 5, 0);
    corpus.push_back(bytes);
    bytes.clear();
    AppendRangeRequest(&bytes, 4, 2, 10.5, 0);
    corpus.push_back(bytes);
    bytes.clear();
    AppendBatchResponse(&bytes, 5, {1.0, 2.0, 3.0});
    corpus.push_back(bytes);
    bytes.clear();
    AppendKnnResponse(&bytes, 6, {{1, 0.5}, {2, 1.5}});
    corpus.push_back(bytes);
    bytes.clear();
    AppendErrorResponse(&bytes, 7, kWireKindDistance,
                        Status::Unavailable("shed"));
    corpus.push_back(bytes);
  }
  Rng rng(53);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string corrupt = corpus[rng.Uniform(corpus.size())];
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    WireFrame frame;
    size_t needed = 0;
    Status error;
    if (DecodeFrame(corrupt, &frame, &needed, &error) ==
        DecodeResult::kFrame) {
      (void)ParseRequest(frame);
      (void)ParseResponse(frame);
    }
  }
}

TEST(WireFuzz, TruncationsAlwaysReportNeedMore) {
  std::string bytes;
  AppendBatchRequest(&bytes, 1, {{1, 2}, {3, 4}, {5, 6}}, 42);
  Rng rng(57);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t cut = rng.Uniform(bytes.size());
    WireFrame frame;
    size_t needed = 0;
    Status error;
    EXPECT_EQ(DecodeFrame(std::string_view(bytes).substr(0, cut), &frame,
                          &needed, &error),
              DecodeResult::kNeedMore);
    EXPECT_GT(needed, cut);
  }
}

// A hostile length prefix must be rejected at the ceiling, and a large
// in-range prefix must only *report* the need — never allocate for it.
TEST(WireFuzz, HostileLengthPrefixesAreBounded) {
  std::string bytes;
  AppendStatsRequest(&bytes, 1);
  const uint32_t over = kWireMaxPayload + 1;
  std::memcpy(bytes.data() + 12, &over, sizeof(over));
  WireFrame frame;
  size_t needed = 0;
  Status error;
  EXPECT_EQ(DecodeFrame(bytes, &frame, &needed, &error),
            DecodeResult::kError);

  const uint32_t at_cap = kWireMaxPayload;
  std::memcpy(bytes.data() + 12, &at_cap, sizeof(at_cap));
  EXPECT_EQ(DecodeFrame(bytes, &frame, &needed, &error),
            DecodeResult::kNeedMore);
  EXPECT_EQ(needed, sizeof(WireHeader) + size_t{kWireMaxPayload});

  // A batch payload claiming a pair count far beyond its actual bytes must
  // be rejected by the guarded count read, not alloc'd then faulted.
  std::string hostile;
  AppendBatchRequest(&hostile, 2, {{1, 2}}, 0);
  // Varint-encode a huge count where the real count byte sits: rebuild the
  // payload by hand — deadline varint 0, then count 0xFFFFFFF (4-byte
  // varint), then too few pair bytes.
  std::string payload;
  payload.push_back('\0');  // deadline 0
  payload.push_back(static_cast<char>(0xff));
  payload.push_back(static_cast<char>(0xff));
  payload.push_back(static_cast<char>(0xff));
  payload.push_back(static_cast<char>(0x7f));  // count = 0xFFFFFFF
  payload.append(8, '\x01');                   // one pair's worth of bytes
  hostile.resize(sizeof(WireHeader));
  const uint32_t payload_size = static_cast<uint32_t>(payload.size());
  std::memcpy(hostile.data() + 12, &payload_size, sizeof(payload_size));
  hostile += payload;
  WireFrame hostile_frame;
  ASSERT_EQ(DecodeFrame(hostile, &hostile_frame, &needed, &error),
            DecodeResult::kFrame);
  EXPECT_FALSE(ParseRequest(hostile_frame).ok());
}

TEST(WireFuzz, RandomGarbageStreamsNeverCrash) {
  Rng rng(59);
  for (int trial = 0; trial < 500; ++trial) {
    std::string stream(rng.Uniform(256), '\0');
    for (char& c : stream) c = static_cast<char>(rng.NextU64());
    // Consume like the server does: decode frames off the front until the
    // stream is exhausted, short, or rejected.
    std::string_view rest = stream;
    for (;;) {
      WireFrame frame;
      size_t needed = 0;
      Status error;
      DecodeResult result = DecodeFrame(rest, &frame, &needed, &error);
      if (result != DecodeResult::kFrame) break;
      (void)ParseRequest(frame);
      rest.remove_prefix(frame.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Socket-fault injection: the net.read / net.write failpoints fire inside
// ReadFull/ReadSome/WriteFull. An injected fault must surface as a clean
// Status on the affected connection; the server must keep serving fresh
// connections afterwards.

struct NetFaultFixture {
  std::unique_ptr<SeOracle> oracle;
  std::string flat_path;

  NetFaultFixture() {
    StatusOr<Dataset> ds =
        MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 12, 3);
    TSO_CHECK(ds.ok());
    DijkstraSolver solver(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));
    flat_path = ::testing::TempDir() + "/netfault_flat.tso";
    TSO_CHECK(SaveSeOracleFlat(*oracle, flat_path).ok());
  }
};

NetFaultFixture& NetFault() {
  static NetFaultFixture* fx = new NetFaultFixture();
  return *fx;
}

TEST(NetFailpoint, InjectedReadFaultSurfacesCleanly) {
  ServeEngine engine;
  ASSERT_TRUE(engine.Load(NetFault().flat_path).ok());
  TsodServer server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  TsodClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Distance(0, 1).ok());

  // Exactly one read — server's or client's, whichever runs first — fails
  // with the injected kIoError. Either way the client observes a clean
  // failure, never a crash or a hang.
  ASSERT_TRUE(failpoint::Arm("net.read", "1*error(injected read)").ok());
  StatusOr<double> got = client.Distance(0, 1);
  EXPECT_FALSE(got.ok());
  failpoint::Disarm("net.read");
  EXPECT_GE(failpoint::Triggered("net.read"), 1u);

  // The server survived: a fresh connection serves correct answers.
  TsodClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  StatusOr<double> after = fresh.Distance(0, 1);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, *engine.Distance(0, 1));
  server.Shutdown();
}

TEST(NetFailpoint, InjectedWriteFaultSurfacesCleanly) {
  ServeEngine engine;
  ASSERT_TRUE(engine.Load(NetFault().flat_path).ok());
  TsodServer server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  TsodClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Distance(0, 1).ok());

  // The next write is the client's request frame: it fails with the
  // injected error and the client closes its connection.
  ASSERT_TRUE(failpoint::Arm("net.write", "1*error(injected write)").ok());
  StatusOr<double> got = client.Distance(0, 1);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(client.connected());
  failpoint::Disarm("net.write");
  EXPECT_EQ(failpoint::Triggered("net.write"), 1u);

  TsodClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Distance(0, 1).ok());
  server.Shutdown();
}

TEST(NetFailpoint, RepeatedFaultsNeverWedgeTheServer) {
  ServeEngine engine;
  ASSERT_TRUE(engine.Load(NetFault().flat_path).ok());
  TsodServer server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  for (int round = 0; round < 10; ++round) {
    const char* point = (round % 2 == 0) ? "net.read" : "net.write";
    ASSERT_TRUE(failpoint::Arm(point, "1*error(injected)").ok());
    TsodClient client;
    if (client.Connect("127.0.0.1", server.port()).ok()) {
      (void)client.Distance(0, 1);  // may fail — must not crash or hang
    }
    failpoint::Disarm(point);
  }
  failpoint::DisarmAll();

  TsodClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  StatusOr<double> got = client.Distance(0, 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *engine.Distance(0, 1));
  server.Shutdown();
  EXPECT_GT(server.stats().accepted, 0u);
}

TEST(Logging, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the level must be a no-op (no way to capture stderr here,
  // but the call must be safe).
  TSO_LOG(Info) << "suppressed";
  TSO_LOG(Error) << "emitted to stderr (expected in test output)";
  SetLogLevel(prev);
}

TEST(Timer, MonotoneAndResettable) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  ASSERT_GE(t0, 0.0);
  double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), t1 + 1.0);
  EXPECT_GT(timer.ElapsedMicros(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(SeOracle, SingletonPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 1, 7);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(*oracle->Distance(0, 0), 0.0);
  EXPECT_FALSE(oracle->Distance(0, 1).ok());
  // Round-trips too.
  StatusOr<SeOracle> back = DeserializeSeOracle(SerializeSeOracle(*oracle));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->Distance(0, 0), 0.0);
}

TEST(SeOracle, TwoPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 2, 9);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const double truth =
      solver.PointToPoint(ds->pois[0], ds->pois[1]).value();
  EXPECT_LE(std::abs(*oracle->Distance(0, 1) - truth), 0.1 * truth + 1e-9);
  // With two POIs the oracle stores the distance exactly (leaf-leaf pair).
  EXPECT_NEAR(*oracle->Distance(0, 1), truth, 1e-6 * (1.0 + truth));
}

TEST(Mesh, SingleTriangleWorldWorks) {
  StatusOr<TerrainMesh> mesh = TerrainMesh::FromSoup(
      {{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}, {{0, 1, 2}});
  ASSERT_TRUE(mesh.ok());
  MmpSolver solver(*mesh);
  const double d = solver
                       .PointToPoint(SurfacePoint::AtVertex(*mesh, 0),
                                     SurfacePoint::AtVertex(*mesh, 1))
                       .value();
  EXPECT_NEAR(d, 10.0, 1e-12);
  // Interior points on the lone face.
  const SurfacePoint a = SurfacePoint::OnFace(0, {1.0, 1.0, 0.0});
  const SurfacePoint b = SurfacePoint::OnFace(0, {4.0, 3.0, 0.0});
  EXPECT_NEAR(solver.PointToPoint(a, b).value(), std::hypot(3.0, 2.0), 1e-9);
}

}  // namespace
}  // namespace tso
