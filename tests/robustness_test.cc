// Robustness and failure-injection tests across modules: corrupted oracle
// blobs must fail cleanly, loggers must honor levels, and degenerate inputs
// must be rejected rather than crash.

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "base/timer.h"
#include "geodesic/mmp_solver.h"
#include "oracle/oracle_serde.h"
#include "oracle/se_oracle.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

TEST(SerdeFuzz, RandomByteFlipsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 10, 3);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.2;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);

  Rng rng(99);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = blob;
    const size_t pos = rng.Uniform(corrupt.size());
    corrupt[pos] = static_cast<char>(rng.NextU64());
    StatusOr<SeOracle> loaded = DeserializeSeOracle(corrupt);
    // Either a clean error, or — if the flip hit a distance payload or a
    // redundant byte — a structurally valid oracle. Never a crash.
    if (loaded.ok()) {
      ++accepted;
      // Structure must still answer in-range queries without aborting.
      (void)loaded->Distance(0, 1);
    }
  }
  // Most flips land in structural fields and must be rejected... but flips
  // into double payloads are legitimately accepted; just require that a
  // decent fraction is caught.
  EXPECT_LT(accepted, 200);
}

TEST(SerdeFuzz, RandomTruncationsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 8, 5);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(DeserializeSeOracle(blob.substr(0, cut)).ok());
  }
}

TEST(Logging, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the level must be a no-op (no way to capture stderr here,
  // but the call must be safe).
  TSO_LOG(Info) << "suppressed";
  TSO_LOG(Error) << "emitted to stderr (expected in test output)";
  SetLogLevel(prev);
}

TEST(Timer, MonotoneAndResettable) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  ASSERT_GE(t0, 0.0);
  double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), t1 + 1.0);
  EXPECT_GT(timer.ElapsedMicros(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(SeOracle, SingletonPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 1, 7);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(*oracle->Distance(0, 0), 0.0);
  EXPECT_FALSE(oracle->Distance(0, 1).ok());
  // Round-trips too.
  StatusOr<SeOracle> back = DeserializeSeOracle(SerializeSeOracle(*oracle));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->Distance(0, 0), 0.0);
}

TEST(SeOracle, TwoPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 2, 9);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const double truth =
      solver.PointToPoint(ds->pois[0], ds->pois[1]).value();
  EXPECT_LE(std::abs(*oracle->Distance(0, 1) - truth), 0.1 * truth + 1e-9);
  // With two POIs the oracle stores the distance exactly (leaf-leaf pair).
  EXPECT_NEAR(*oracle->Distance(0, 1), truth, 1e-6 * (1.0 + truth));
}

TEST(Mesh, SingleTriangleWorldWorks) {
  StatusOr<TerrainMesh> mesh = TerrainMesh::FromSoup(
      {{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}, {{0, 1, 2}});
  ASSERT_TRUE(mesh.ok());
  MmpSolver solver(*mesh);
  const double d = solver
                       .PointToPoint(SurfacePoint::AtVertex(*mesh, 0),
                                     SurfacePoint::AtVertex(*mesh, 1))
                       .value();
  EXPECT_NEAR(d, 10.0, 1e-12);
  // Interior points on the lone face.
  const SurfacePoint a = SurfacePoint::OnFace(0, {1.0, 1.0, 0.0});
  const SurfacePoint b = SurfacePoint::OnFace(0, {4.0, 3.0, 0.0});
  EXPECT_NEAR(solver.PointToPoint(a, b).value(), std::hypot(3.0, 2.0), 1e-9);
}

}  // namespace
}  // namespace tso
