// Robustness and failure-injection tests across modules: corrupted oracle
// blobs must fail cleanly, loggers must honor levels, and degenerate inputs
// must be rejected rather than crash.

#include <memory>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "base/timer.h"
#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "oracle/oracle_serde.h"
#include "oracle/pack_view.h"
#include "oracle/se_oracle.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

TEST(SerdeFuzz, RandomByteFlipsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 10, 3);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.2;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);

  Rng rng(99);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = blob;
    const size_t pos = rng.Uniform(corrupt.size());
    corrupt[pos] = static_cast<char>(rng.NextU64());
    StatusOr<SeOracle> loaded = DeserializeSeOracle(corrupt);
    // Either a clean error, or — if the flip hit a distance payload or a
    // redundant byte — a structurally valid oracle. Never a crash.
    if (loaded.ok()) {
      ++accepted;
      // Structure must still answer in-range queries without aborting.
      (void)loaded->Distance(0, 1);
    }
  }
  // Most flips land in structural fields and must be rejected... but flips
  // into double payloads are legitimately accepted; just require that a
  // decent fraction is caught.
  EXPECT_LT(accepted, 200);
}

TEST(SerdeFuzz, RandomTruncationsNeverCrash) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 8, 5);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const std::string blob = SerializeSeOracle(*oracle);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(DeserializeSeOracle(blob.substr(0, cut)).ok());
  }
}

/// Shared corpus for the mapped-format fuzz suites: one oracle, its flat
/// serialization, and a 4-shard pack of it.
struct FuzzCorpus {
  std::unique_ptr<SeOracle> oracle;
  std::string flat;
  std::string pack;

  FuzzCorpus() {
    StatusOr<Dataset> ds =
        MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 16, 4);
    TSO_CHECK(ds.ok());
    DijkstraSolver solver(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));
    flat = SerializeSeOracleFlat(*oracle);
    PackBuildOptions pack_options;
    pack_options.num_shards = 4;
    StatusOr<std::string> packed = SerializeOraclePack(*oracle, pack_options);
    TSO_CHECK(packed.ok());
    pack = *packed;
  }
};

FuzzCorpus& Corpus() {
  static FuzzCorpus* corpus = new FuzzCorpus();
  return *corpus;
}

TEST(FlatFuzz, RandomByteFlipsNeverCrash) {
  const std::string& blob = Corpus().flat;
  OracleView::Options verify;
  verify.verify_checksums = true;
  Rng rng(17);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<OracleView> view = OracleView::FromBuffer(corrupt, verify);
    if (view.ok()) {
      // With checksums on, an accepted flip landed in unprotected padding:
      // queries must be exact, and must not crash.
      ++accepted;
      EXPECT_EQ(*view->Distance(0, 1), *Corpus().oracle->Distance(0, 1));
    }
  }
  // Almost the whole file is covered by a section or table CRC.
  EXPECT_LT(accepted, 300);
}

TEST(FlatFuzz, SectionTableFlipsAreAlwaysRejected) {
  const std::string& blob = Corpus().flat;
  StatusOr<FlatFileInfo> info = ReadFlatFileInfo(blob);
  ASSERT_TRUE(info.ok());
  const size_t table_begin = sizeof(FlatHeader);
  const size_t table_end =
      table_begin + info->sections.size() * sizeof(FlatSectionEntry);
  // Every single-byte flip inside the section table must be caught by the
  // header's table CRC — even without the checksum option (it guards the
  // structural metadata every open depends on).
  for (size_t pos = table_begin; pos < table_end; pos += 3) {
    std::string corrupt = blob;
    corrupt[pos] ^= 0x01;
    EXPECT_FALSE(OracleView::FromBuffer(corrupt).ok()) << "offset " << pos;
  }
}

TEST(FlatFuzz, RandomTruncationsNeverCrash) {
  const std::string& blob = Corpus().flat;
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(OracleView::FromBuffer(blob.substr(0, cut)).ok());
  }
}

TEST(PackFuzz, RandomByteFlipsNeverCrash) {
  const std::string& blob = Corpus().pack;
  PackView::Options verify;
  verify.verify_checksums = true;
  Rng rng(31);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<PackView> view = PackView::FromBuffer(corrupt, verify);
    if (view.ok()) {
      ++accepted;
      EXPECT_EQ(*view->Distance(0, 1), *Corpus().oracle->Distance(0, 1));
    }
  }
  EXPECT_LT(accepted, 300);
}

TEST(PackFuzz, DegradedOpenNeverCrashesAndNeverLies) {
  const std::string& blob = Corpus().pack;
  const SeOracle& oracle = *Corpus().oracle;
  PackView::Options degraded;
  degraded.verify_checksums = true;
  degraded.allow_degraded = true;
  Rng rng(37);
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = blob;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    StatusOr<PackView> view = PackView::FromBuffer(corrupt, degraded);
    if (!view.ok()) continue;  // frame/routing damage: clean rejection
    // An accepted degraded open must answer every query either bit-exactly
    // or with an honest kUnavailable — a wrong answer is the one forbidden
    // outcome.
    for (uint32_t q = 0; q < 8; ++q) {
      const uint32_t s = (q * 5) % n;
      const uint32_t t = (q * 11 + 3) % n;
      StatusOr<double> got = view->Distance(s, t);
      if (got.ok()) {
        // Rescued probes answer from the reverse-orientation record, which
        // may differ in final ulps (opposite SSAD sources).
        const double truth = *oracle.Distance(s, t);
        EXPECT_NEAR(*got, truth, 1e-9 * (1.0 + truth)) << s << "," << t;
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
            << got.status().ToString();
      }
    }
  }
}

TEST(PackFuzz, RoutingSectionFlipsAreSafe) {
  const std::string& blob = Corpus().pack;
  const SeOracle& oracle = *Corpus().oracle;
  StatusOr<PackFileInfo> info = ReadPackFileInfo(blob);
  ASSERT_TRUE(info.ok());
  // Find the node-routing section; flips inside it are the nastiest case —
  // they redirect probes rather than corrupt payloads.
  const FlatSectionEntry* routing = nullptr;
  for (const FlatSectionEntry& section : info->sections) {
    if (section.id == kPackShardOfNode) routing = &section;
  }
  ASSERT_NE(routing, nullptr);
  Rng rng(41);
  const uint32_t n = static_cast<uint32_t>(oracle.num_pois());
  for (int trial = 0; trial < 100; ++trial) {
    std::string corrupt = blob;
    corrupt[routing->offset + rng.Uniform(routing->size)] ^=
        static_cast<char>(1 + rng.Uniform(255));
    // Opened without checksums, so the flip reaches the query path: a
    // misrouted probe may miss (shards are disjoint — it can never hit a
    // wrong record), so the answer is exact or an error, never silently
    // wrong.
    StatusOr<PackView> view = PackView::FromBuffer(corrupt);
    if (!view.ok()) continue;  // structural routing validation caught it
    for (uint32_t q = 0; q < 8; ++q) {
      const uint32_t s = (q * 7) % n;
      const uint32_t t = (q * 3 + 1) % n;
      StatusOr<double> got = view->Distance(s, t);
      if (got.ok()) {
        EXPECT_EQ(*got, *oracle.Distance(s, t)) << s << "," << t;
      }
    }
  }
}

TEST(PackFuzz, RandomTruncationsNeverCrash) {
  const std::string& blob = Corpus().pack;
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.Uniform(blob.size());
    EXPECT_FALSE(PackView::FromBuffer(blob.substr(0, cut)).ok());
  }
}

TEST(Logging, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the level must be a no-op (no way to capture stderr here,
  // but the call must be safe).
  TSO_LOG(Info) << "suppressed";
  TSO_LOG(Error) << "emitted to stderr (expected in test output)";
  SetLogLevel(prev);
}

TEST(Timer, MonotoneAndResettable) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  ASSERT_GE(t0, 0.0);
  double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), t1 + 1.0);
  EXPECT_GT(timer.ElapsedMicros(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(SeOracle, SingletonPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 1, 7);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(*oracle->Distance(0, 0), 0.0);
  EXPECT_FALSE(oracle->Distance(0, 1).ok());
  // Round-trips too.
  StatusOr<SeOracle> back = DeserializeSeOracle(SerializeSeOracle(*oracle));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->Distance(0, 0), 0.0);
}

TEST(SeOracle, TwoPoiOracle) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 2, 9);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  const double truth =
      solver.PointToPoint(ds->pois[0], ds->pois[1]).value();
  EXPECT_LE(std::abs(*oracle->Distance(0, 1) - truth), 0.1 * truth + 1e-9);
  // With two POIs the oracle stores the distance exactly (leaf-leaf pair).
  EXPECT_NEAR(*oracle->Distance(0, 1), truth, 1e-6 * (1.0 + truth));
}

TEST(Mesh, SingleTriangleWorldWorks) {
  StatusOr<TerrainMesh> mesh = TerrainMesh::FromSoup(
      {{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}, {{0, 1, 2}});
  ASSERT_TRUE(mesh.ok());
  MmpSolver solver(*mesh);
  const double d = solver
                       .PointToPoint(SurfacePoint::AtVertex(*mesh, 0),
                                     SurfacePoint::AtVertex(*mesh, 1))
                       .value();
  EXPECT_NEAR(d, 10.0, 1e-12);
  // Interior points on the lone face.
  const SurfacePoint a = SurfacePoint::OnFace(0, {1.0, 1.0, 0.0});
  const SurfacePoint b = SurfacePoint::OnFace(0, {4.0, 3.0, 0.0});
  EXPECT_NEAR(solver.PointToPoint(a, b).value(), std::hypot(3.0, 2.0), 1e-9);
}

}  // namespace
}  // namespace tso
