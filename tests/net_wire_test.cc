// The tsod wire protocol: every request/response kind must round-trip
// bit-identically through the shared encoder/decoder; the incremental
// frame decoder must report kNeedMore with an exact byte requirement on
// every prefix; and structural violations (magic, version, kind, status
// range, payload ceiling, trailing payload bytes) must be clean protocol
// errors, never crashes. robustness_test fuzzes the same decoder with
// arbitrary bytes; this file pins the exact semantics.

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"

namespace tso {
namespace {

// Decodes the single complete frame expected at the front of `bytes`.
WireFrame MustDecode(const std::string& bytes) {
  WireFrame frame;
  size_t needed = 0;
  Status error;
  DecodeResult result = DecodeFrame(bytes, &frame, &needed, &error);
  EXPECT_EQ(result, DecodeResult::kFrame) << error.ToString();
  EXPECT_EQ(frame.size(), bytes.size());
  return frame;
}

TEST(WireCodec, DistanceRequestRoundTrip) {
  std::string bytes;
  AppendDistanceRequest(&bytes, 7, 3, 12, 2500);
  WireFrame frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.kind, kWireKindDistance);
  EXPECT_EQ(frame.header.request_id, 7u);
  EXPECT_EQ(frame.header.status, 0u);
  StatusOr<WireRequest> req = ParseRequest(frame);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->kind, kWireKindDistance);
  EXPECT_EQ(req->request_id, 7u);
  EXPECT_EQ(req->deadline_us, 2500u);
  EXPECT_EQ(req->s, 3u);
  EXPECT_EQ(req->t, 12u);
}

TEST(WireCodec, BatchRequestRoundTrip) {
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 1}, {4294967295u, 0}, {17, 17}};
  std::string bytes;
  AppendBatchRequest(&bytes, 99, pairs, 0);
  StatusOr<WireRequest> req = ParseRequest(MustDecode(bytes));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->kind, kWireKindBatch);
  EXPECT_EQ(req->deadline_us, 0u);
  EXPECT_EQ(req->pairs, pairs);
}

TEST(WireCodec, KnnAndRangeRequestRoundTrip) {
  std::string bytes;
  AppendKnnRequest(&bytes, 2, 5, 1000000, 77);
  StatusOr<WireRequest> knn = ParseRequest(MustDecode(bytes));
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->kind, kWireKindKnn);
  EXPECT_EQ(knn->query, 5u);
  EXPECT_EQ(knn->k, 1000000u);
  EXPECT_EQ(knn->deadline_us, 77u);

  bytes.clear();
  AppendRangeRequest(&bytes, 3, 9, 123.456, 0);
  StatusOr<WireRequest> range = ParseRequest(MustDecode(bytes));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->kind, kWireKindRange);
  EXPECT_EQ(range->query, 9u);
  EXPECT_EQ(range->radius, 123.456);
}

TEST(WireCodec, StatsAndHealthRequestsAreEmpty) {
  std::string bytes;
  AppendStatsRequest(&bytes, 1);
  WireFrame frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.payload_size, 0u);
  EXPECT_TRUE(ParseRequest(frame).ok());

  bytes.clear();
  AppendHealthRequest(&bytes, 2);
  frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.payload_size, 0u);
  EXPECT_TRUE(ParseRequest(frame).ok());
}

TEST(WireCodec, ResponseRoundTripsEveryKind) {
  std::string bytes;
  AppendDistanceResponse(&bytes, 4, 2.718281828459045);
  StatusOr<WireResponse> distance = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(distance.ok());
  EXPECT_EQ(distance->kind, kWireKindDistance);
  EXPECT_EQ(distance->request_id, 4u);
  EXPECT_TRUE(distance->status.ok());
  EXPECT_EQ(distance->distance, 2.718281828459045);

  const std::vector<double> distances = {0.0, 1.5, -3.25};
  bytes.clear();
  AppendBatchResponse(&bytes, 5, distances);
  StatusOr<WireResponse> batch = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->distances, distances);

  const std::vector<KnnResult> neighbors = {{3, 1.25}, {9, 2.5}};
  bytes.clear();
  AppendKnnResponse(&bytes, 6, neighbors);
  StatusOr<WireResponse> knn = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->neighbors.size(), 2u);
  EXPECT_EQ(knn->neighbors[0].poi, 3u);
  EXPECT_EQ(knn->neighbors[0].distance, 1.25);
  EXPECT_EQ(knn->neighbors[1].poi, 9u);
  EXPECT_EQ(knn->neighbors[1].distance, 2.5);

  const std::vector<uint32_t> members = {1, 4, 1000000};
  bytes.clear();
  AppendRangeResponse(&bytes, 7, members);
  StatusOr<WireResponse> range = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->members, members);

  WireServeStats stats;
  stats.reloads = 3;
  stats.queries = 12345678901234ull;
  stats.shed = 17;
  stats.deadline_exceeded = 5;
  stats.load_failures = 1;
  stats.load_retries = 2;
  stats.inflight = 4;
  stats.num_shards = 8;
  stats.degraded_shards = 1;
  stats.num_pois = 5000;
  stats.mapped_bytes = 1u << 30;
  stats.dynamic = true;
  stats.health = 2;
  bytes.clear();
  AppendStatsResponse(&bytes, 8, stats);
  StatusOr<WireResponse> parsed = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->stats.reloads, stats.reloads);
  EXPECT_EQ(parsed->stats.queries, stats.queries);
  EXPECT_EQ(parsed->stats.shed, stats.shed);
  EXPECT_EQ(parsed->stats.deadline_exceeded, stats.deadline_exceeded);
  EXPECT_EQ(parsed->stats.load_failures, stats.load_failures);
  EXPECT_EQ(parsed->stats.load_retries, stats.load_retries);
  EXPECT_EQ(parsed->stats.inflight, stats.inflight);
  EXPECT_EQ(parsed->stats.num_shards, stats.num_shards);
  EXPECT_EQ(parsed->stats.degraded_shards, stats.degraded_shards);
  EXPECT_EQ(parsed->stats.num_pois, stats.num_pois);
  EXPECT_EQ(parsed->stats.mapped_bytes, stats.mapped_bytes);
  EXPECT_EQ(parsed->stats.dynamic, stats.dynamic);
  EXPECT_EQ(parsed->stats.health, stats.health);

  bytes.clear();
  AppendHealthResponse(&bytes, 9, 1);
  StatusOr<WireResponse> health = ParseResponse(MustDecode(bytes));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, 1u);
}

TEST(WireCodec, ErrorResponseCarriesCodeAndMessage) {
  std::string bytes;
  AppendErrorResponse(&bytes, 42, kWireKindKnn,
                      Status::DeadlineExceeded("query budget exhausted"));
  WireFrame frame = MustDecode(bytes);
  EXPECT_EQ(frame.header.kind, kWireKindKnn | kWireResponseBit);
  EXPECT_EQ(frame.header.status,
            static_cast<uint16_t>(StatusCode::kDeadlineExceeded));
  StatusOr<WireResponse> response = ParseResponse(frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, kWireKindKnn);
  EXPECT_EQ(response->request_id, 42u);
  EXPECT_EQ(response->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response->status.message(), "query budget exhausted");
}

// Feed a valid frame one byte at a time: every strict prefix must come
// back kNeedMore, and once the header is visible `needed` must name the
// exact total frame size so a reader can size its next read.
TEST(WireCodec, IncrementalDecodeReportsExactNeed) {
  std::string bytes;
  AppendBatchRequest(&bytes, 11, {{1, 2}, {3, 4}}, 99);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireFrame frame;
    size_t needed = 0;
    Status error;
    DecodeResult result =
        DecodeFrame(std::string_view(bytes).substr(0, len), &frame, &needed,
                    &error);
    ASSERT_EQ(result, DecodeResult::kNeedMore) << "prefix length " << len;
    if (len < sizeof(WireHeader)) {
      EXPECT_EQ(needed, sizeof(WireHeader));
    } else {
      EXPECT_EQ(needed, bytes.size());
    }
  }
  MustDecode(bytes);
}

TEST(WireCodec, DecodesBackToBackFramesInOrder) {
  std::string stream;
  AppendDistanceRequest(&stream, 1, 0, 1, 0);
  AppendStatsRequest(&stream, 2);
  AppendKnnRequest(&stream, 3, 4, 5, 0);

  std::string_view rest = stream;
  std::vector<uint32_t> ids;
  while (!rest.empty()) {
    WireFrame frame;
    size_t needed = 0;
    Status error;
    ASSERT_EQ(DecodeFrame(rest, &frame, &needed, &error),
              DecodeResult::kFrame);
    ids.push_back(frame.header.request_id);
    rest.remove_prefix(frame.size());
  }
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 2, 3}));
}

// Structural rejections: each mutation of a valid header must produce
// kError with a descriptive Status (the connection-killing path).
TEST(WireCodec, RejectsStructurallyInvalidHeaders) {
  std::string valid;
  AppendDistanceRequest(&valid, 1, 2, 3, 0);

  auto expect_error = [](std::string bytes, const char* what) {
    WireFrame frame;
    size_t needed = 0;
    Status error;
    EXPECT_EQ(DecodeFrame(bytes, &frame, &needed, &error),
              DecodeResult::kError)
        << what;
    EXPECT_FALSE(error.ok()) << what;
    EXPECT_FALSE(error.message().empty()) << what;
  };

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  expect_error(bad_magic, "magic");

  std::string bad_version = valid;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  expect_error(bad_version, "version");

  std::string zero_kind = valid;
  zero_kind[5] = 0;
  expect_error(zero_kind, "kind 0");

  std::string big_kind = valid;
  big_kind[5] = static_cast<char>(kWireKindMax + 1);
  expect_error(big_kind, "kind out of range");

  std::string garbage_kind = valid;
  garbage_kind[5] = static_cast<char>(0x7f);
  expect_error(garbage_kind, "garbage kind");

  std::string bad_status = valid;
  {
    const uint16_t status = 1000;
    std::memcpy(bad_status.data() + 6, &status, sizeof(status));
  }
  expect_error(bad_status, "status out of range");

  std::string oversized = valid;
  {
    const uint32_t payload_size = kWireMaxPayload + 1;
    std::memcpy(oversized.data() + 12, &payload_size, sizeof(payload_size));
  }
  expect_error(oversized, "payload over ceiling");
}

// Payload-level rejections: structurally valid frames whose payloads are
// malformed are protocol errors from ParseRequest/ParseResponse.
TEST(WireCodec, RejectsMalformedPayloads) {
  // Trailing garbage after a complete distance payload.
  std::string bytes;
  AppendDistanceRequest(&bytes, 1, 2, 3, 0);
  bytes.push_back('\0');
  const uint32_t padded =
      static_cast<uint32_t>(bytes.size() - sizeof(WireHeader));
  std::memcpy(bytes.data() + 12, &padded, sizeof(padded));
  EXPECT_FALSE(ParseRequest(MustDecode(bytes)).ok());

  // Truncated payload: batch that claims more pairs than bytes present.
  bytes.clear();
  AppendBatchRequest(&bytes, 2, {{1, 2}, {3, 4}}, 0);
  bytes.resize(bytes.size() - 4);
  const uint32_t shrunk =
      static_cast<uint32_t>(bytes.size() - sizeof(WireHeader));
  std::memcpy(bytes.data() + 12, &shrunk, sizeof(shrunk));
  EXPECT_FALSE(ParseRequest(MustDecode(bytes)).ok());

  // A request with the response bit set must not parse as a request, and
  // vice versa.
  bytes.clear();
  AppendDistanceRequest(&bytes, 3, 0, 1, 0);
  EXPECT_FALSE(ParseResponse(MustDecode(bytes)).ok());
  bytes.clear();
  AppendDistanceResponse(&bytes, 4, 1.0);
  EXPECT_FALSE(ParseRequest(MustDecode(bytes)).ok());

  // A request carrying a non-zero status is malformed.
  bytes.clear();
  AppendDistanceRequest(&bytes, 5, 0, 1, 0);
  const uint16_t status = static_cast<uint16_t>(StatusCode::kInternal);
  std::memcpy(bytes.data() + 6, &status, sizeof(status));
  EXPECT_FALSE(ParseRequest(MustDecode(bytes)).ok());
}

TEST(WireCodec, StatusFromWireRebuildsNamedCodes) {
  Status s = StatusFromWire(
      static_cast<uint16_t>(StatusCode::kUnavailable), "shed");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "shed");
  EXPECT_TRUE(
      StatusFromWire(static_cast<uint16_t>(StatusCode::kOk), "").ok());
}

}  // namespace
}  // namespace tso
