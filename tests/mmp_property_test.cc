// Property-style tests for the exact MMP solver, parameterized over terrain
// seeds and relief amplitudes.

#include <cmath>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "geodesic/mmp_solver.h"
#include "geodesic/steiner_graph.h"
#include "geodesic/steiner_solver.h"
#include "mesh/refine.h"
#include "terrain/terrain_synth.h"

namespace tso {
namespace {

TerrainMesh Synth(uint64_t seed, double amplitude, uint32_t n = 300) {
  SynthSpec spec;
  spec.extent_x = 900.0;
  spec.extent_y = 700.0;
  spec.amplitude = amplitude;
  spec.feature_size = 250.0;
  spec.seed = seed;
  StatusOr<TerrainMesh> mesh = SynthesizeMesh(spec, n);
  TSO_CHECK(mesh.ok());
  return std::move(*mesh);
}

class MmpTerrainSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

// Centroid refinement leaves the surface geometrically identical (the new
// vertex lies in the face plane), so exact geodesic distances must be
// invariant — a very sharp correctness probe for window propagation across
// different triangulations of the same surface.
TEST_P(MmpTerrainSweep, RefinementInvariance) {
  const auto [seed, amplitude] = GetParam();
  TerrainMesh mesh = Synth(seed, amplitude);
  StatusOr<TerrainMesh> refined = RefineCentroid(mesh);
  ASSERT_TRUE(refined.ok());
  MmpSolver coarse(mesh);
  MmpSolver fine(*refined);
  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    if (a == b) continue;
    // Original vertices keep their ids in RefineCentroid's output.
    const double d0 = coarse
                          .PointToPoint(SurfacePoint::AtVertex(mesh, a),
                                        SurfacePoint::AtVertex(mesh, b))
                          .value();
    const double d1 = fine
                          .PointToPoint(SurfacePoint::AtVertex(*refined, a),
                                        SurfacePoint::AtVertex(*refined, b))
                          .value();
    EXPECT_NEAR(d0, d1, 1e-6 * (1.0 + d0))
        << "seed=" << seed << " amp=" << amplitude << " pair " << a << ","
        << b;
  }
}

TEST_P(MmpTerrainSweep, BoundedByDenseSteinerGraph) {
  const auto [seed, amplitude] = GetParam();
  TerrainMesh mesh = Synth(seed, amplitude);
  MmpSolver mmp(mesh);
  StatusOr<SteinerGraph> graph = SteinerGraph::Build(mesh, 8);
  ASSERT_TRUE(graph.ok());
  SteinerSolver steiner(*graph);
  Rng rng(seed * 17 + 3);
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    if (a == b) continue;
    const SurfacePoint s = SurfacePoint::AtVertex(mesh, a);
    const SurfacePoint t = SurfacePoint::AtVertex(mesh, b);
    const double exact = mmp.PointToPoint(s, t).value();
    const double graph_d = steiner.PointToPoint(s, t).value();
    EXPECT_LE(exact, graph_d * (1.0 + 1e-9));
    EXPECT_LE(graph_d, exact * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndReliefs, MmpTerrainSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.0, 150.0, 450.0)));

TEST(MmpFlatAmplitude, ZeroReliefIsEuclidean) {
  TerrainMesh mesh = Synth(9, 0.0);
  MmpSolver solver(mesh);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(mesh.num_vertices()));
    const double d = solver
                         .PointToPoint(SurfacePoint::AtVertex(mesh, a),
                                       SurfacePoint::AtVertex(mesh, b))
                         .value();
    EXPECT_NEAR(d, Distance(mesh.vertex(a), mesh.vertex(b)),
                1e-7 * (1.0 + d));
  }
}

// Failure injection: the window budget must abort the run with a clean
// error, not crash or hang.
TEST(MmpFailureInjection, WindowBudgetExceeded) {
  TerrainMesh mesh = Synth(11, 300.0, 400);
  MmpSolver solver(mesh);
  solver.set_max_windows(16);
  const Status status = solver.Run(SurfacePoint::AtVertex(mesh, 0), {});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(MmpFailureInjection, RecoversAfterFailedRun) {
  TerrainMesh mesh = Synth(12, 300.0, 400);
  MmpSolver solver(mesh);
  solver.set_max_windows(16);
  (void)solver.Run(SurfacePoint::AtVertex(mesh, 0), {});
  solver.set_max_windows(50'000'000);
  ASSERT_TRUE(solver.Run(SurfacePoint::AtVertex(mesh, 0), {}).ok());
  EXPECT_EQ(solver.VertexDistance(0), 0.0);
  EXPECT_TRUE(std::isfinite(
      solver.VertexDistance(static_cast<uint32_t>(mesh.num_vertices() - 1))));
}

TEST(MmpState, UnrunSolverReportsInfinity) {
  TerrainMesh mesh = Synth(13, 100.0, 200);
  MmpSolver solver(mesh);
  EXPECT_EQ(solver.VertexDistance(3), kInfDist);
  EXPECT_EQ(solver.PointDistance(SurfacePoint::AtVertex(mesh, 5)), kInfDist);
}

TEST(MmpState, RunStatsPopulated) {
  TerrainMesh mesh = Synth(14, 200.0, 300);
  MmpSolver solver(mesh);
  ASSERT_TRUE(solver.Run(SurfacePoint::AtVertex(mesh, 0), {}).ok());
  EXPECT_GT(solver.stats().windows_created, 0u);
  EXPECT_GT(solver.stats().windows_propagated, 0u);
  EXPECT_GT(solver.stats().vertices_processed, 0u);
  EXPECT_LE(solver.stats().vertices_processed, mesh.num_vertices());
}

// Consecutive runs from different sources must not leak state.
TEST(MmpState, RunsAreIndependent) {
  TerrainMesh mesh = Synth(15, 250.0, 300);
  MmpSolver fresh_a(mesh);
  MmpSolver fresh_b(mesh);
  MmpSolver reused(mesh);
  const SurfacePoint s0 = SurfacePoint::AtVertex(mesh, 0);
  const SurfacePoint s1 = SurfacePoint::AtVertex(
      mesh, static_cast<uint32_t>(mesh.num_vertices() / 2));
  ASSERT_TRUE(fresh_a.Run(s0, {}).ok());
  ASSERT_TRUE(fresh_b.Run(s1, {}).ok());
  ASSERT_TRUE(reused.Run(s0, {}).ok());
  ASSERT_TRUE(reused.Run(s1, {}).ok());  // second run on the same instance
  for (uint32_t v = 0; v < mesh.num_vertices(); v += 7) {
    EXPECT_NEAR(reused.VertexDistance(v), fresh_b.VertexDistance(v),
                1e-9 * (1.0 + fresh_b.VertexDistance(v)));
  }
}

}  // namespace
}  // namespace tso
