// The dynamic-oracle hammer (the TSan CI target for the mutable stack):
// 6 reader threads sweep random stable-id pairs through pinned snapshots
// while 2 writer threads churn inserts/removes hard enough to force
// hundreds of log merges and >100 background compactions. Readers must
// never observe a failed or torn answer; after the writers quiesce, a final
// compaction must leave the oracle bit-identical to a from-scratch static
// build over the surviving POI set.

#include <atomic>
#include <cmath>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/dynamic_oracle.h"
#include "geodesic/dijkstra_solver.h"
#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

constexpr uint32_t kReaders = 6;
constexpr uint32_t kWriters = 2;
constexpr size_t kInsertsPerWriter = 500;
constexpr size_t kLivePerWriter = 6;  // sliding window of own inserts

TEST(DynHammer, ReadWriteCompactHammer) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 24, 37);
  ASSERT_TRUE(ds.ok());
  const TerrainMesh& mesh = *ds->mesh;
  DijkstraSolver solver(mesh);

  DynamicOracleOptions options;
  options.base.epsilon = 0.2;
  options.max_delta = 4;  // compact roughly every 5 inserts
  options.solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  StatusOr<std::unique_ptr<DynamicSeOracle>> built =
      DynamicSeOracle::Create(mesh, ds->pois, solver, options);
  ASSERT_TRUE(built.ok());
  DynamicSeOracle& dyn = **built;

  // Pre-generate each writer's insert pool so worker threads never touch
  // the (non-thread-safe) point locator.
  std::vector<std::vector<SurfacePoint>> pools(kWriters);
  for (uint32_t w = 0; w < kWriters; ++w) {
    Rng rng(100 + w);
    pools[w] =
        GenerateUniformPois(mesh, *ds->locator, kInsertsPerWriter, rng);
  }

  std::atomic<uint32_t> writers_running{kWriters};
  std::atomic<size_t> write_failures{0};
  std::atomic<size_t> read_failures{0};
  std::atomic<size_t> wrong_answers{0};
  std::atomic<size_t> reads_done{0};

  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      std::deque<uint32_t> own;
      size_t ops = 0;
      for (const SurfacePoint& p : pools[w]) {
        StatusOr<uint32_t> id = dyn.Insert(p);
        if (!id.ok()) {
          ++write_failures;
          continue;
        }
        own.push_back(*id);
        if (own.size() > kLivePerWriter) {
          if (!dyn.Remove(own.front()).ok()) ++write_failures;
          own.pop_front();
        }
        // Force a blocking compaction every 5th insert so the hammer always
        // crosses the >=100 compaction bar, however the automatic
        // (try-lock, best-effort) trigger is scheduled.
        if (++ops % 5 == 0 && !dyn.Compact().ok()) ++write_failures;
      }
      writers_running.fetch_sub(1);
    });
  }

  for (uint32_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r]() {
      uint64_t lcg = 0x9e3779b97f4a7c15ull + r;
      auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
      };
      while (writers_running.load(std::memory_order_acquire) > 0) {
        // The strong consistency probe: everything below runs against ONE
        // pinned immutable snapshot, so liveness seen through the pin must
        // agree exactly with the answer from the pin's source.
        DynamicSeOracle::PinnedSource pinned = dyn.Pin();
        const DynamicSnapshot& snap = pinned.snapshot();
        const uint32_t n = static_cast<uint32_t>(snap.num_ids());
        const uint32_t s = static_cast<uint32_t>(next() % n);
        const uint32_t t = static_cast<uint32_t>(next() % n);
        StatusOr<double> d = pinned.source().Distance(s, t);
        if (snap.IsLive(s) && snap.IsLive(t)) {
          if (!d.ok()) {
            ++read_failures;
          } else if (!(std::isfinite(*d) && *d >= 0.0)) {
            ++wrong_answers;
          }
        } else if (d.ok() || d.status().code() != StatusCode::kNotFound) {
          ++wrong_answers;  // dead id must answer NotFound, nothing else
        }
        // Base POIs are never removed by the writers: kNN from one must
        // always succeed, whatever generation is current.
        if (reads_done.fetch_add(1, std::memory_order_relaxed) % 64 == 0) {
          StatusOr<std::vector<KnnResult>> knn =
              KnnQuery(pinned.source(), 3, 5);
          if (!knn.ok() || knn->size() != 5u) ++read_failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(write_failures.load(), 0u);
  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_GT(reads_done.load(), 0u);

  DynamicStats mid = dyn.stats();
  EXPECT_GE(mid.compactions, 100u) << "churn did not exercise compaction";
  EXPECT_EQ(mid.inserts, kWriters * kInsertsPerWriter);
  EXPECT_EQ(mid.oplog_depth, 0u);

  // Quiesce + final compaction, then the bit-identical sweep: the dynamic
  // oracle must answer exactly like a from-scratch static build over the
  // survivors (ascending stable id — the canonical order Compact uses).
  ASSERT_TRUE(dyn.Compact().ok());
  std::vector<uint32_t> live;
  std::vector<SurfacePoint> survivors;
  for (uint32_t id = 0; id < dyn.num_ids(); ++id) {
    if (!dyn.IsLive(id)) continue;
    live.push_back(id);
    survivors.push_back(dyn.poi(id));
  }
  EXPECT_EQ(live.size(), ds->n() + kWriters * kLivePerWriter);
  DijkstraSolver fresh_solver(mesh);
  StatusOr<SeOracle> fresh =
      SeOracle::Build(mesh, survivors, fresh_solver, options.base);
  ASSERT_TRUE(fresh.ok());
  for (uint32_t i = 0; i < live.size(); ++i) {
    for (uint32_t j = 0; j < live.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(*dyn.Distance(live[i], live[j]), *fresh->Distance(i, j))
          << live[i] << "," << live[j];
    }
  }

  // Every retired generation is accounted for: nothing leaks, nothing is
  // reclaimed twice.
  DynamicStats fin = dyn.stats();
  EXPECT_EQ(fin.epoch.retired, fin.epoch.reclaimed + fin.epoch.pending);
  EXPECT_EQ(fin.live_pois, live.size());
}

}  // namespace
}  // namespace tso
