// The dynamic-oracle hammer (the TSan CI target for the mutable stack):
// 6 reader threads sweep random stable-id pairs through pinned snapshots
// while 2 writer threads churn inserts/removes hard enough to force
// hundreds of log merges and >100 background compactions. Readers must
// never observe a failed or torn answer; after the writers quiesce, a final
// compaction must leave the oracle bit-identical to a from-scratch static
// build over the surviving POI set.

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "dyn/dynamic_oracle.h"
#include "geodesic/dijkstra_solver.h"
#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

constexpr uint32_t kReaders = 6;
constexpr uint32_t kWriters = 2;
constexpr size_t kInsertsPerWriter = 500;
constexpr size_t kLivePerWriter = 6;  // sliding window of own inserts

TEST(DynHammer, ReadWriteCompactHammer) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 24, 37);
  ASSERT_TRUE(ds.ok());
  const TerrainMesh& mesh = *ds->mesh;
  DijkstraSolver solver(mesh);

  DynamicOracleOptions options;
  options.base.epsilon = 0.2;
  options.max_delta = 4;  // compact roughly every 5 inserts
  options.solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  StatusOr<std::unique_ptr<DynamicSeOracle>> built =
      DynamicSeOracle::Create(mesh, ds->pois, solver, options);
  ASSERT_TRUE(built.ok());
  DynamicSeOracle& dyn = **built;

  // Pre-generate each writer's insert pool so worker threads never touch
  // the (non-thread-safe) point locator.
  std::vector<std::vector<SurfacePoint>> pools(kWriters);
  for (uint32_t w = 0; w < kWriters; ++w) {
    Rng rng(100 + w);
    pools[w] =
        GenerateUniformPois(mesh, *ds->locator, kInsertsPerWriter, rng);
  }

  std::atomic<uint32_t> writers_running{kWriters};
  std::atomic<size_t> write_failures{0};
  std::atomic<size_t> read_failures{0};
  std::atomic<size_t> wrong_answers{0};
  std::atomic<size_t> reads_done{0};

  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      std::deque<uint32_t> own;
      size_t ops = 0;
      for (const SurfacePoint& p : pools[w]) {
        StatusOr<uint32_t> id = dyn.Insert(p);
        if (!id.ok()) {
          ++write_failures;
          continue;
        }
        own.push_back(*id);
        if (own.size() > kLivePerWriter) {
          if (!dyn.Remove(own.front()).ok()) ++write_failures;
          own.pop_front();
        }
        // Force a blocking compaction every 5th insert so the hammer always
        // crosses the >=100 compaction bar, however the automatic
        // (try-lock, best-effort) trigger is scheduled.
        if (++ops % 5 == 0 && !dyn.Compact().ok()) ++write_failures;
      }
      writers_running.fetch_sub(1);
    });
  }

  for (uint32_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r]() {
      uint64_t lcg = 0x9e3779b97f4a7c15ull + r;
      auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
      };
      while (writers_running.load(std::memory_order_acquire) > 0) {
        // The strong consistency probe: everything below runs against ONE
        // pinned immutable snapshot, so liveness seen through the pin must
        // agree exactly with the answer from the pin's source.
        DynamicSeOracle::PinnedSource pinned = dyn.Pin();
        const DynamicSnapshot& snap = pinned.snapshot();
        const uint32_t n = static_cast<uint32_t>(snap.num_ids());
        const uint32_t s = static_cast<uint32_t>(next() % n);
        const uint32_t t = static_cast<uint32_t>(next() % n);
        StatusOr<double> d = pinned.source().Distance(s, t);
        if (snap.IsLive(s) && snap.IsLive(t)) {
          if (!d.ok()) {
            ++read_failures;
          } else if (!(std::isfinite(*d) && *d >= 0.0)) {
            ++wrong_answers;
          }
        } else if (d.ok() || d.status().code() != StatusCode::kNotFound) {
          ++wrong_answers;  // dead id must answer NotFound, nothing else
        }
        // Base POIs are never removed by the writers: kNN from one must
        // always succeed, whatever generation is current.
        if (reads_done.fetch_add(1, std::memory_order_relaxed) % 64 == 0) {
          StatusOr<std::vector<KnnResult>> knn =
              KnnQuery(pinned.source(), 3, 5);
          if (!knn.ok() || knn->size() != 5u) ++read_failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(write_failures.load(), 0u);
  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_GT(reads_done.load(), 0u);

  DynamicStats mid = dyn.stats();
  EXPECT_GE(mid.compactions, 100u) << "churn did not exercise compaction";
  EXPECT_EQ(mid.inserts, kWriters * kInsertsPerWriter);
  EXPECT_EQ(mid.oplog_depth, 0u);

  // Quiesce + final compaction, then the bit-identical sweep: the dynamic
  // oracle must answer exactly like a from-scratch static build over the
  // survivors (ascending stable id — the canonical order Compact uses).
  ASSERT_TRUE(dyn.Compact().ok());
  std::vector<uint32_t> live;
  std::vector<SurfacePoint> survivors;
  for (uint32_t id = 0; id < dyn.num_ids(); ++id) {
    if (!dyn.IsLive(id)) continue;
    live.push_back(id);
    survivors.push_back(dyn.poi(id));
  }
  EXPECT_EQ(live.size(), ds->n() + kWriters * kLivePerWriter);
  DijkstraSolver fresh_solver(mesh);
  StatusOr<SeOracle> fresh =
      SeOracle::Build(mesh, survivors, fresh_solver, options.base);
  ASSERT_TRUE(fresh.ok());
  for (uint32_t i = 0; i < live.size(); ++i) {
    for (uint32_t j = 0; j < live.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(*dyn.Distance(live[i], live[j]), *fresh->Distance(i, j))
          << live[i] << "," << live[j];
    }
  }

  // Every retired generation is accounted for: nothing leaks, nothing is
  // reclaimed twice.
  DynamicStats fin = dyn.stats();
  EXPECT_EQ(fin.epoch.retired, fin.epoch.reclaimed + fin.epoch.pending);
  EXPECT_EQ(fin.live_pois, live.size());
}

// The fault-injection variant: while readers run the same pinned-snapshot
// consistency probe, error failpoints are pulsed on the oplog merge and the
// compaction publish paths. An injected failure may fail a WRITE (the
// writer sees the error and treats that op's outcome as indeterminate —
// merge-after-append means a "failed" insert can still fold later), but it
// must never fail a READ, tear a snapshot, or leave a successfully removed
// stable id answering: the failed merge consumes nothing and the failed
// compaction discards only its aside-built base.
TEST(DynHammer, InjectedMergeAndCompactFailuresAreInvisibleToReaders) {
  failpoint::DisarmAll();
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 20, 53);
  ASSERT_TRUE(ds.ok());
  const TerrainMesh& mesh = *ds->mesh;
  DijkstraSolver solver(mesh);

  DynamicOracleOptions options;
  options.base.epsilon = 0.25;
  options.max_delta = 4;
  options.solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  StatusOr<std::unique_ptr<DynamicSeOracle>> built =
      DynamicSeOracle::Create(mesh, ds->pois, solver, options);
  ASSERT_TRUE(built.ok());
  DynamicSeOracle& dyn = **built;

  constexpr size_t kInserts = 240;
  Rng rng(77);
  std::vector<SurfacePoint> pool =
      GenerateUniformPois(mesh, *ds->locator, kInserts, rng);

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> injected_write_errors{0};
  std::atomic<size_t> unexpected_write_errors{0};
  std::atomic<size_t> stale_after_remove{0};
  std::atomic<size_t> read_failures{0};
  std::atomic<size_t> wrong_answers{0};
  std::vector<uint32_t> expect_live;  // writer-owned; read after join
  std::vector<uint32_t> expect_dead;

  auto injected = [](const Status& status) {
    return status.message().find("failpoint") != std::string::npos;
  };

  std::thread writer([&]() {
    std::deque<uint32_t> window;
    size_t ops = 0;
    for (const SurfacePoint& p : pool) {
      StatusOr<uint32_t> id = dyn.Insert(p);
      if (!id.ok()) {
        // Indeterminate: the record is appended before the merge, so an
        // injected merge failure can surface as an Insert error whose op
        // still folds later. Only unexpected (non-injected) errors count
        // against the test.
        if (!injected(id.status())) ++unexpected_write_errors;
        continue;
      }
      window.push_back(*id);
      if (window.size() > 5) {
        const uint32_t victim = window.front();
        window.pop_front();
        const Status removed = dyn.Remove(victim);
        if (removed.ok()) {
          expect_dead.push_back(victim);
          // The stale-id probe: a successful Remove must be immediately
          // visible — the id answers NotFound from this moment on.
          StatusOr<double> gone = dyn.Distance(victim, 0);
          if (gone.ok() || gone.status().code() != StatusCode::kNotFound) {
            ++stale_after_remove;
          }
        } else if (!injected(removed)) {
          ++unexpected_write_errors;
        }
        // Injected-failure removes are indeterminate: skip the id.
      }
      if (++ops % 7 == 0) {
        const Status compacted = dyn.Compact();
        if (!compacted.ok()) {
          if (injected(compacted)) {
            injected_write_errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++unexpected_write_errors;
          }
        }
      }
    }
    expect_live.assign(window.begin(), window.end());
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < 4; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t lcg = 0x9e3779b97f4a7c15ull + r;
      auto next = [&lcg]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
      };
      while (!writer_done.load(std::memory_order_acquire)) {
        DynamicSeOracle::PinnedSource pinned = dyn.Pin();
        const DynamicSnapshot& snap = pinned.snapshot();
        const uint32_t n = static_cast<uint32_t>(snap.num_ids());
        const uint32_t s = static_cast<uint32_t>(next() % n);
        const uint32_t t = static_cast<uint32_t>(next() % n);
        StatusOr<double> d = pinned.source().Distance(s, t);
        if (snap.IsLive(s) && snap.IsLive(t)) {
          if (!d.ok()) {
            ++read_failures;  // reads must never see an injected failure
          } else if (!(std::isfinite(*d) && *d >= 0.0)) {
            ++wrong_answers;
          }
        } else if (d.ok() || d.status().code() != StatusCode::kNotFound) {
          ++wrong_answers;
        }
      }
    });
  }

  // Pulse the two write-path seams with single-shot errors while the churn
  // runs. Each pulse fails exactly one merge or one compaction publish.
  size_t pulses = 0;
  while (!writer_done.load(std::memory_order_acquire)) {
    ASSERT_TRUE(failpoint::Arm("dyn.merge", "1*error").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(failpoint::Arm("dyn.compact.publish", "1*error").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++pulses;
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  const uint64_t merge_faults = failpoint::Triggered("dyn.merge");
  const uint64_t compact_faults = failpoint::Triggered("dyn.compact.publish");
  failpoint::DisarmAll();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_EQ(stale_after_remove.load(), 0u);
  EXPECT_EQ(unexpected_write_errors.load(), 0u);
  EXPECT_GT(pulses, 0u);
  EXPECT_GT(merge_faults + compact_faults, 0u)
      << "the pulses never landed: the run was vacuous";

  // With the seams disarmed the oracle heals completely: the log drains,
  // determinate ops are all visible, and removed ids stay dead.
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.stats().oplog_depth, 0u);
  for (const uint32_t id : expect_live) {
    EXPECT_TRUE(dyn.IsLive(id)) << id;
    EXPECT_TRUE(dyn.Distance(id, 0).ok()) << id;
  }
  for (const uint32_t id : expect_dead) {
    EXPECT_FALSE(dyn.IsLive(id)) << id;
    EXPECT_EQ(dyn.Distance(id, 0).status().code(), StatusCode::kNotFound)
        << id;
  }
  DynamicStats fin = dyn.stats();
  EXPECT_EQ(fin.epoch.retired, fin.epoch.reclaimed + fin.epoch.pending);
}

}  // namespace
}  // namespace tso
