#include "mesh/mesh_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "mesh/mesh_builder.h"

namespace tso {
namespace {

class MeshIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  TerrainMesh MakeMesh() {
    StatusOr<TerrainMesh> mesh = MeshFromFunction(
        4, 4, 1.5, [](double x, double y) { return 0.1 * x * y; });
    TSO_CHECK(mesh.ok());
    return std::move(*mesh);
  }
};

TEST_F(MeshIoTest, OffRoundTrip) {
  TerrainMesh mesh = MakeMesh();
  const std::string path = TempPath("mesh.off");
  ASSERT_TRUE(WriteOff(mesh, path).ok());
  StatusOr<TerrainMesh> back = ReadOff(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_vertices(), mesh.num_vertices());
  ASSERT_EQ(back->num_faces(), mesh.num_faces());
  for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(back->vertex(v), mesh.vertex(v));
  }
  for (uint32_t f = 0; f < mesh.num_faces(); ++f) {
    EXPECT_EQ(back->face(f), mesh.face(f));
  }
}

TEST_F(MeshIoTest, ObjRoundTrip) {
  TerrainMesh mesh = MakeMesh();
  const std::string path = TempPath("mesh.obj");
  ASSERT_TRUE(WriteObj(mesh, path).ok());
  StatusOr<TerrainMesh> back = ReadObj(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_vertices(), mesh.num_vertices());
  ASSERT_EQ(back->num_faces(), mesh.num_faces());
  for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(back->vertex(v), mesh.vertex(v));
  }
}

TEST_F(MeshIoTest, MissingFileErrors) {
  EXPECT_EQ(ReadOff("/nonexistent/foo.off").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadObj("/nonexistent/foo.obj").status().code(),
            StatusCode::kIoError);
}

TEST_F(MeshIoTest, BadOffHeader) {
  const std::string path = TempPath("bad.off");
  std::ofstream(path) << "NOTOFF\n1 1 0\n";
  EXPECT_FALSE(ReadOff(path).ok());
}

TEST_F(MeshIoTest, TruncatedOff) {
  const std::string path = TempPath("trunc.off");
  std::ofstream(path) << "OFF\n4 2 0\n0 0 0\n1 0 0\n";
  EXPECT_FALSE(ReadOff(path).ok());
}

TEST_F(MeshIoTest, NonTriangleOffFace) {
  const std::string path = TempPath("quad.off");
  std::ofstream(path) << "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n";
  EXPECT_FALSE(ReadOff(path).ok());
}

TEST_F(MeshIoTest, ObjWithSlashesAndComments) {
  const std::string path = TempPath("slash.obj");
  std::ofstream(path) << "# comment\nv 0 0 0\nv 1 0 0\nv 0 1 0\n"
                      << "f 1/1 2/2 3/3\n";
  StatusOr<TerrainMesh> mesh = ReadObj(path);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->num_faces(), 1u);
}

TEST_F(MeshIoTest, ObjNonTriangleRejected) {
  const std::string path = TempPath("quad.obj");
  std::ofstream(path) << "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
  EXPECT_FALSE(ReadObj(path).ok());
}

}  // namespace
}  // namespace tso
