#include <algorithm>

#include <gtest/gtest.h>

#include "geodesic/mmp_solver.h"
#include "oracle/se_oracle.h"
#include "query/knn.h"
#include "query/range_query.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

struct QueryFixture {
  StatusOr<Dataset> ds;
  std::unique_ptr<MmpSolver> solver;
  std::unique_ptr<SeOracle> oracle;

  explicit QueryFixture(double epsilon = 0.1)
      : ds(MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, 25, 19)) {
    TSO_CHECK(ds.ok());
    solver = std::make_unique<MmpSolver>(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = epsilon;
    StatusOr<SeOracle> built =
        SeOracle::Build(*ds->mesh, ds->pois, *solver, options, nullptr);
    TSO_CHECK(built.ok());
    oracle = std::make_unique<SeOracle>(std::move(*built));
  }
};

TEST(Knn, MatchesBruteForceOverOracleMetric) {
  QueryFixture fx;
  const uint32_t q = 3;
  StatusOr<std::vector<KnnResult>> knn = KnnQuery(MakeSource(*fx.oracle), q, 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  // Brute force over the same oracle distances.
  std::vector<KnnResult> brute;
  for (uint32_t p = 0; p < fx.oracle->num_pois(); ++p) {
    if (p == q) continue;
    brute.push_back({p, *fx.oracle->Distance(q, p)});
  }
  std::sort(brute.begin(), brute.end(), [](const auto& a, const auto& b) {
    return a.distance != b.distance ? a.distance < b.distance
                                    : a.poi < b.poi;
  });
  for (size_t i = 0; i < knn->size(); ++i) {
    EXPECT_EQ((*knn)[i].poi, brute[i].poi);
    EXPECT_EQ((*knn)[i].distance, brute[i].distance);
  }
  // Sorted ascending.
  for (size_t i = 1; i < knn->size(); ++i) {
    EXPECT_GE((*knn)[i].distance, (*knn)[i - 1].distance);
  }
}

TEST(Knn, PrunedMatchesLinearScan) {
  QueryFixture fx;
  for (uint32_t q : {0u, 5u, 11u, 20u}) {
    for (size_t k : {1ul, 3ul, 8ul}) {
      StatusOr<std::vector<KnnResult>> linear = KnnQuery(MakeSource(*fx.oracle), q, k);
      StatusOr<std::vector<KnnResult>> pruned =
          KnnQueryPruned(MakeSource(*fx.oracle), q, k);
      ASSERT_TRUE(linear.ok() && pruned.ok());
      ASSERT_EQ(pruned->size(), linear->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        EXPECT_EQ((*pruned)[i].poi, (*linear)[i].poi)
            << "q=" << q << " k=" << k;
        EXPECT_EQ((*pruned)[i].distance, (*linear)[i].distance);
      }
    }
  }
}

TEST(Knn, PrunedHandlesKLargerThanN) {
  QueryFixture fx;
  StatusOr<std::vector<KnnResult>> pruned = KnnQueryPruned(MakeSource(*fx.oracle), 0, 999);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->size(), fx.oracle->num_pois() - 1);
}

TEST(Knn, PrunedInvalidQueryRejected) {
  QueryFixture fx;
  EXPECT_FALSE(KnnQueryPruned(MakeSource(*fx.oracle), 999, 3).ok());
}

TEST(Knn, KLargerThanNReturnsAll) {
  QueryFixture fx;
  StatusOr<std::vector<KnnResult>> knn = KnnQuery(MakeSource(*fx.oracle), 0, 999);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), fx.oracle->num_pois() - 1);
}

TEST(Knn, InvalidQueryRejected) {
  QueryFixture fx;
  EXPECT_FALSE(KnnQuery(MakeSource(*fx.oracle), 999, 3).ok());
}

TEST(Knn, KZeroReturnsEmptyInBothVariants) {
  QueryFixture fx;
  StatusOr<std::vector<KnnResult>> linear = KnnQuery(MakeSource(*fx.oracle), 3, 0);
  ASSERT_TRUE(linear.ok());
  EXPECT_TRUE(linear->empty());
  // Regression: the pruned variant used to call best.front() on an empty
  // candidate heap when k == 0.
  StatusOr<std::vector<KnnResult>> pruned = KnnQueryPruned(MakeSource(*fx.oracle), 3, 0);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned->empty());
  // Out-of-range query ids are rejected even for k == 0.
  EXPECT_FALSE(KnnQuery(MakeSource(*fx.oracle), 999, 0).ok());
  EXPECT_FALSE(KnnQueryPruned(MakeSource(*fx.oracle), 999, 0).ok());
}

TEST(Knn, DistanceTiesBrokenIdenticallyInBothVariants) {
  // A coarse ε makes node pairs coarse: every POI of a far-away subtree is
  // answered from the same (ancestor, ancestor) center distance, so exact
  // oracle-distance ties are common. Both kNN variants must break them the
  // same way (by POI id) at every k, including ks that split a tie group.
  QueryFixture fx(0.5);
  const size_t n = fx.oracle->num_pois();
  size_t ties = 0;
  for (uint32_t q = 0; q < n; ++q) {
    std::vector<double> dists;
    for (uint32_t p = 0; p < n; ++p) {
      if (p != q) dists.push_back(*fx.oracle->Distance(q, p));
    }
    std::sort(dists.begin(), dists.end());
    for (size_t i = 1; i < dists.size(); ++i) {
      if (dists[i] == dists[i - 1]) ++ties;
    }
  }
  ASSERT_GT(ties, 0u) << "fixture produced no exact distance ties; "
                         "coarsen epsilon to restore the tie coverage";
  for (uint32_t q = 0; q < n; ++q) {
    for (size_t k = 1; k < n; ++k) {
      StatusOr<std::vector<KnnResult>> linear = KnnQuery(MakeSource(*fx.oracle), q, k);
      StatusOr<std::vector<KnnResult>> pruned =
          KnnQueryPruned(MakeSource(*fx.oracle), q, k);
      ASSERT_TRUE(linear.ok() && pruned.ok());
      ASSERT_EQ(pruned->size(), linear->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        ASSERT_EQ((*pruned)[i].poi, (*linear)[i].poi)
            << "q=" << q << " k=" << k << " i=" << i;
        ASSERT_EQ((*pruned)[i].distance, (*linear)[i].distance);
      }
    }
  }
}

TEST(Range, MatchesPredicate) {
  QueryFixture fx;
  const uint32_t q = 7;
  const double radius = 500.0;
  StatusOr<std::vector<uint32_t>> hits = RangeQuery(MakeSource(*fx.oracle), q, radius);
  ASSERT_TRUE(hits.ok());
  std::set<uint32_t> hit_set(hits->begin(), hits->end());
  for (uint32_t p = 0; p < fx.oracle->num_pois(); ++p) {
    if (p == q) continue;
    const bool inside = *fx.oracle->Distance(q, p) <= radius;
    EXPECT_EQ(hit_set.count(p) > 0, inside) << p;
  }
}

TEST(Range, ZeroRadiusEmpty) {
  QueryFixture fx;
  StatusOr<std::vector<uint32_t>> hits = RangeQuery(MakeSource(*fx.oracle), 0, 0.0);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(Range, NegativeRadiusRejected) {
  QueryFixture fx;
  EXPECT_FALSE(RangeQuery(MakeSource(*fx.oracle), 0, -1.0).ok());
}

TEST(Range, HugeRadiusReturnsAll) {
  QueryFixture fx;
  StatusOr<std::vector<uint32_t>> hits = RangeQuery(MakeSource(*fx.oracle), 0, 1e12);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), fx.oracle->num_pois() - 1);
}

}  // namespace
}  // namespace tso
