// The failpoint framework itself: spec parsing, arming/disarming, hit and
// trigger accounting, the N*-limited and delay/pause actions, and the
// macro's behaviour inside Status-returning functions — plus a seam check
// proving a real library entry point (MmapFile::Open) honors an armed
// point and recovers when it is disarmed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "base/mmap_file.h"

namespace tso {
namespace {

/// A Status-returning function with a seam, as library code would have.
Status GuardedOperation() {
  TSO_FAILPOINT("test.guarded");
  return Status::Ok();
}

class FailpointTest : public ::testing::Test {
 protected:
  // Each test starts and ends with a clean registry so suites can run in
  // any order (and so a failed EXPECT cannot leak an armed point into the
  // next test).
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSeamIsANoOp) {
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(failpoint::Hits("test.guarded"), 0u);
  EXPECT_TRUE(failpoint::List().empty());
}

TEST_F(FailpointTest, ErrorActionInjectsIoErrorNamingThePoint) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "error").ok());
  const Status injected = GuardedOperation();
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_NE(injected.message().find("test.guarded"), std::string::npos);
  EXPECT_EQ(failpoint::Hits("test.guarded"), 1u);
  EXPECT_EQ(failpoint::Triggered("test.guarded"), 1u);

  failpoint::Disarm("test.guarded");
  EXPECT_TRUE(GuardedOperation().ok());
  // Counters survive Disarm (the evaluation of a disarmed point counts as
  // neither a hit nor a trigger).
  EXPECT_EQ(failpoint::Hits("test.guarded"), 1u);
  EXPECT_EQ(failpoint::Triggered("test.guarded"), 1u);
}

TEST_F(FailpointTest, CustomErrorMessage) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "error(disk on fire)").ok());
  const Status injected = GuardedOperation();
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_NE(injected.message().find("disk on fire"), std::string::npos);
}

TEST_F(FailpointTest, CountLimitedErrorFiresExactlyNTimes) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "2*error").ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());  // limit exhausted
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(failpoint::Hits("test.guarded"), 4u);
  EXPECT_EQ(failpoint::Triggered("test.guarded"), 2u);
}

TEST_F(FailpointTest, DelayActionSleepsThenSucceeds) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "delay(20)").ok());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedOperation().ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
  EXPECT_EQ(failpoint::Triggered("test.guarded"), 1u);
}

TEST_F(FailpointTest, PauseBlocksUntilDisarmed) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "pause").ok());
  std::atomic<bool> done{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(GuardedOperation().ok());  // pause, then fall through
    done.store(true, std::memory_order_release);
  });
  while (failpoint::Hits("test.guarded") == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load(std::memory_order_acquire));  // still paused
  failpoint::Disarm("test.guarded");
  blocked.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
}

TEST_F(FailpointTest, ArmListArmsEveryEntry) {
  ASSERT_TRUE(
      failpoint::ArmList("test.alpha=error;test.beta=3*error(boom)").ok());
  const std::vector<failpoint::Info> points = failpoint::List();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].name, "test.alpha");
  EXPECT_EQ(points[0].spec, "error");
  EXPECT_EQ(points[1].name, "test.beta");
  EXPECT_EQ(points[1].spec, "3*error(boom)");
  failpoint::DisarmAll();
  EXPECT_TRUE(failpoint::List().empty());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(failpoint::Arm("test.x", "explode").ok());
  EXPECT_FALSE(failpoint::Arm("test.x", "banana*error").ok());
  EXPECT_FALSE(failpoint::Arm("test.x", "-3*error").ok());
  EXPECT_FALSE(failpoint::Arm("test.x", "delay(soon)").ok());
  EXPECT_FALSE(failpoint::Arm("test.x", "error(unclosed").ok());
  EXPECT_FALSE(failpoint::Arm("test.x", "").ok());
  EXPECT_FALSE(failpoint::ArmList("test.x").ok());  // missing '='
  // A rejected spec must not arm the point.
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(failpoint::Arm("test.guarded", "error").ok());
  EXPECT_FALSE(GuardedOperation().ok());
  ASSERT_TRUE(failpoint::Arm("test.guarded", "off").ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

// Seam check: the deepest artifact-pipeline entry point honors the
// framework, fails with the injected status, and recovers on disarm.
TEST_F(FailpointTest, MmapOpenSeam) {
  const std::string path = ::testing::TempDir() + "/failpoint_mmap_seam";
  std::ofstream(path, std::ios::binary) << "0123456789abcdef";

  ASSERT_TRUE(failpoint::Arm("mmap.open", "error").ok());
  StatusOr<MmapFile> injected = MmapFile::Open(path);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), StatusCode::kIoError);
  EXPECT_NE(injected.status().message().find("mmap.open"), std::string::npos);

  failpoint::Disarm("mmap.open");
  StatusOr<MmapFile> real = MmapFile::Open(path);
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(real->view(), "0123456789abcdef");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tso
