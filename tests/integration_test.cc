// Cross-module integration tests: full pipeline over every paper-dataset
// stand-in, capacity dimension ranges, and end-to-end workload checks.

#include <cmath>

#include <gtest/gtest.h>

#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "oracle/capacity_dimension.h"
#include "oracle/se_oracle.h"
#include "query/knn.h"
#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

TEST(Integration, AllPaperDatasetsBuildAndAnswer) {
  for (PaperDataset which :
       {PaperDataset::kBearHead, PaperDataset::kEaglePeak,
        PaperDataset::kSanFrancisco, PaperDataset::kSanFranciscoSmall}) {
    StatusOr<Dataset> ds = MakePaperDataset(which, 800, 30, 5);
    ASSERT_TRUE(ds.ok()) << PaperDatasetName(which);
    MmpSolver solver(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.25;
    SeBuildStats stats;
    StatusOr<SeOracle> oracle =
        SeOracle::Build(*ds->mesh, ds->pois, solver, options, &stats);
    ASSERT_TRUE(oracle.ok())
        << PaperDatasetName(which) << ": " << oracle.status().ToString();
    EXPECT_LT(stats.height, 30) << "paper: h < 30 in practice";
    EXPECT_EQ(stats.distance_fallbacks, 0u);

    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
      const uint32_t s = static_cast<uint32_t>(rng.Uniform(ds->n()));
      const uint32_t t = static_cast<uint32_t>(rng.Uniform(ds->n()));
      if (s == t) continue;
      const double truth =
          solver.PointToPoint(ds->pois[s], ds->pois[t]).value();
      const double approx = oracle->Distance(s, t).value();
      EXPECT_LE(std::abs(approx - truth), options.epsilon * truth + 1e-9)
          << PaperDatasetName(which);
    }
  }
}

TEST(Integration, CapacityDimensionInPaperRange) {
  // Appendix A: β is a little above 1.3 on terrain data, measured between
  // 1.3 and 1.5 on the paper's datasets. Our synthetic stand-ins should be
  // in a comparable band (sampling noise allowed).
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kBearHead, 2000, 300, 7);
  ASSERT_TRUE(ds.ok());
  DijkstraSolver solver(*ds->mesh);  // coarse metric is fine for packing
  Rng rng(13);
  CapacityDimensionEstimate est =
      EstimateCapacityDimension(ds->pois, solver, 40, rng);
  EXPECT_GT(est.samples, 0u);
  EXPECT_GT(est.beta, 0.5);
  EXPECT_LT(est.beta, 2.2);
  EXPECT_LE(est.mean_dimension, est.beta);
}

TEST(Integration, OracleSizeIndependentOfTerrainSize) {
  // SE's defining property (§1.3): the oracle size is driven by n (POIs),
  // not by N (terrain vertices) — unlike SP-Oracle, whose Steiner machinery
  // scales with N. Same POI count on a 4x finer mesh of the same region
  // must yield a comparable oracle size.
  StatusOr<Dataset> coarse =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, 30, 3);
  StatusOr<Dataset> fine =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 1600, 30, 3);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  ASSERT_GT(fine->N(), 3 * coarse->N());
  MmpSolver solver_a(*coarse->mesh);
  MmpSolver solver_b(*fine->mesh);
  SeOracleOptions options;
  options.epsilon = 0.2;
  StatusOr<SeOracle> a =
      SeOracle::Build(*coarse->mesh, coarse->pois, solver_a, options,
                      nullptr);
  StatusOr<SeOracle> b =
      SeOracle::Build(*fine->mesh, fine->pois, solver_b, options, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  // POI layouts differ slightly between the meshes, so allow generous slack;
  // the point is that size does NOT track the 4x growth in N.
  const double ratio = static_cast<double>(b->SizeBytes()) /
                       static_cast<double>(a->SizeBytes());
  EXPECT_LT(ratio, 2.5);
  EXPECT_GT(ratio, 0.4);
}

TEST(Integration, HikersWorkflow) {
  // The GIS scenario of §1.1: landmarks, one kNN per landmark.
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kEaglePeak, 700, 25, 21);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.1;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, ds->pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  for (uint32_t q = 0; q < 5; ++q) {
    StatusOr<std::vector<KnnResult>> knn = KnnQuery(MakeSource(*oracle), q, 3);
    ASSERT_TRUE(knn.ok());
    ASSERT_EQ(knn->size(), 3u);
    // kNN under the ε metric must be near-optimal under the exact metric.
    const double exact_to_first =
        solver.PointToPoint(ds->pois[q], ds->pois[(*knn)[0].poi]).value();
    for (uint32_t p = 0; p < ds->n(); ++p) {
      if (p == q) continue;
      const double d = solver.PointToPoint(ds->pois[q], ds->pois[p]).value();
      EXPECT_GE(d, exact_to_first / (1.0 + options.epsilon) /
                       (1.0 + options.epsilon) - 1e-9);
    }
  }
}

TEST(Integration, VertexAndFacePoisMixed) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 500, 10, 23);
  ASSERT_TRUE(ds.ok());
  std::vector<SurfacePoint> pois = ds->pois;
  Rng rng(5);
  for (uint32_t i = 0; i < 10; ++i) {
    pois.push_back(SurfacePoint::AtVertex(
        *ds->mesh,
        static_cast<uint32_t>(rng.Uniform(ds->mesh->num_vertices()))));
  }
  MmpSolver solver(*ds->mesh);
  SeOracleOptions options;
  options.epsilon = 0.15;
  StatusOr<SeOracle> oracle =
      SeOracle::Build(*ds->mesh, pois, solver, options, nullptr);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (int trial = 0; trial < 15; ++trial) {
    const uint32_t s = static_cast<uint32_t>(rng.Uniform(pois.size()));
    const uint32_t t = static_cast<uint32_t>(rng.Uniform(pois.size()));
    if (s == t) continue;
    const double truth = solver.PointToPoint(pois[s], pois[t]).value();
    EXPECT_LE(std::abs(*oracle->Distance(s, t) - truth),
              options.epsilon * truth + 1e-9);
  }
}

}  // namespace
}  // namespace tso
