#include "base/status.h"

#include <gtest/gtest.h>

namespace tso {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_EQ(Status::Internal("boom").ToString(), "Internal: boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOr, OkStatusNormalizedToError) {
  StatusOr<int> v = Status::Ok();  // programming error, must not look ok
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

Status FailingOp() { return Status::IoError("disk"); }
Status Chained() {
  TSO_RETURN_IF_ERROR(FailingOp());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chained().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tso
