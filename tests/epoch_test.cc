#include "base/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace tso {
namespace {

TEST(EpochDomainTest, ReclaimWithoutReadersIsImmediate) {
  EpochDomain domain;
  bool freed = false;
  domain.Retire([&freed]() { freed = true; });
  EXPECT_FALSE(freed);
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_TRUE(freed);
  const EpochDomain::Stats stats = domain.stats();
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(EpochDomainTest, ActiveGuardBlocksReclaim) {
  EpochDomain domain;
  bool freed = false;
  {
    EpochDomain::Guard guard = domain.Enter();
    domain.Retire([&freed]() { freed = true; });
    // The guard pins the epoch the object was retired in: not reclaimable.
    EXPECT_EQ(domain.Reclaim(), 0u);
    EXPECT_FALSE(freed);
    EXPECT_EQ(domain.stats().pending, 1u);
  }
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochDomainTest, GuardTakenAfterRetireDoesNotBlockReclaim) {
  EpochDomain domain;
  bool freed = false;
  domain.Retire([&freed]() { freed = true; });
  // A reader entering *after* the retirement pins a later epoch: it can
  // only see the replacement, so the old object reclaims under its feet.
  EpochDomain::Guard guard = domain.Enter();
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochDomainTest, NestedGuardsReleaseOnce) {
  EpochDomain domain;
  bool freed = false;
  {
    EpochDomain::Guard outer = domain.Enter();
    {
      EpochDomain::Guard inner = domain.Enter();
      domain.Retire([&freed]() { freed = true; });
      EXPECT_EQ(domain.Reclaim(), 0u);
    }
    // Inner guard released, outer still pins.
    EXPECT_EQ(domain.Reclaim(), 0u);
    EXPECT_FALSE(freed);
  }
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochDomainTest, FifoReclaimOrder) {
  EpochDomain domain;
  std::vector<int> order;
  domain.Retire([&order]() { order.push_back(1); });
  domain.Retire([&order]() { order.push_back(2); });
  domain.Retire([&order]() { order.push_back(3); });
  EXPECT_EQ(domain.Reclaim(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EpochDomainTest, DestructorQuiescesPending) {
  bool freed = false;
  {
    EpochDomain domain;
    domain.Retire([&freed]() { freed = true; });
  }
  EXPECT_TRUE(freed);
}

// The swap-under-readers protocol the serving tier uses: a writer republishes
// a payload while readers continuously dereference it through guards. Every
// read must observe a self-consistent payload (checksum invariant) and no
// payload may be freed while a reader of its epoch is active. ASan (and the
// payload checksum) catches use-after-free; TSan the ordering bugs.
TEST(EpochDomainTest, ConcurrentSwapHammer) {
  struct Payload {
    uint64_t value;
    uint64_t check;  // always ~value
  };
  EpochDomain domain;
  std::atomic<Payload*> shared{new Payload{0, ~0ull}};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  constexpr int kReaders = 8;
  std::atomic<int> started{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&]() {
      bool first = true;
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard guard = domain.Enter();
        const Payload* p = shared.load(std::memory_order_seq_cst);
        ASSERT_EQ(p->check, ~p->value);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (first) {
          first = false;
          started.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Don't start swapping until every reader has completed a guarded read;
  // otherwise the swap loop can finish before the readers are scheduled and
  // the test exercises nothing.
  while (started.load(std::memory_order_relaxed) < kReaders) {
    std::this_thread::yield();
  }

  constexpr uint64_t kSwaps = 2000;
  for (uint64_t i = 1; i <= kSwaps; ++i) {
    Payload* fresh = new Payload{i, ~i};
    Payload* old = shared.exchange(fresh, std::memory_order_seq_cst);
    domain.Retire([old]() { delete old; });
    domain.Reclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  domain.Quiesce();
  const EpochDomain::Stats stats = domain.stats();
  EXPECT_EQ(stats.retired, kSwaps);
  EXPECT_EQ(stats.reclaimed, kSwaps);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.reader_slots, static_cast<size_t>(kReaders));
  EXPECT_GT(reads.load(), 0u);
  delete shared.load();
}

// The shutdown race the dynamic oracle's destructor depends on: destroying
// a domain while a reader still holds a Guard. ~EpochDomain runs Quiesce(),
// which must wait for the guard to release before running the pending
// reclaimers — never reclaim under the reader, never return early.
TEST(EpochDomainTest, DestructorQuiesceRacesGuardRelease) {
  auto* domain = new EpochDomain();
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> freed{false};
  std::atomic<bool> destroyed{false};

  std::thread reader([&]() {
    EpochDomain::Guard guard = domain->Enter();
    reader_pinned.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The guard pinned the retire epoch the whole time: the reclaimer must
    // not have run while we could still dereference the retired object.
    EXPECT_FALSE(freed.load(std::memory_order_acquire));
  });
  while (!reader_pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  domain->Retire(
      [&freed]() { freed.store(true, std::memory_order_release); });

  std::thread destroyer([&]() {
    delete domain;  // blocks in Quiesce() until the reader exits
    destroyed.store(true, std::memory_order_release);
  });
  // Give the destructor a window to (incorrectly) finish early.
  for (int i = 0; i < 1000 && !destroyed.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(destroyed.load(std::memory_order_acquire));
  EXPECT_FALSE(freed.load(std::memory_order_acquire));

  release_reader.store(true, std::memory_order_release);
  reader.join();
  destroyer.join();
  EXPECT_TRUE(destroyed.load(std::memory_order_acquire));
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

// Concurrent Retire() storm from many threads racing Reclaim(), then a
// destructor quiesce: every reclaimer runs exactly once.
TEST(EpochDomainTest, ConcurrentRetireStormThenDestructorQuiesce) {
  constexpr int kThreads = 8;
  constexpr int kRetiresPerThread = 500;
  std::atomic<uint64_t> reclaimed{0};
  {
    EpochDomain domain;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&]() {
        for (int i = 0; i < kRetiresPerThread; ++i) {
          domain.Retire([&reclaimed]() {
            reclaimed.fetch_add(1, std::memory_order_relaxed);
          });
          if (i % 16 == 0) domain.Reclaim();
        }
      });
    }
    for (std::thread& th : threads) th.join();
    // Destructor quiesces whatever Reclaim() calls have not freed yet.
  }
  EXPECT_EQ(reclaimed.load(),
            static_cast<uint64_t>(kThreads) * kRetiresPerThread);
}

// Two domains used from the same thread must not alias each other's slots.
TEST(EpochDomainTest, IndependentDomains) {
  EpochDomain a;
  EpochDomain b;
  bool freed_a = false;
  EpochDomain::Guard guard_a = a.Enter();
  a.Retire([&freed_a]() { freed_a = true; });
  // The guard on `a` must not block `b`.
  bool freed_b = false;
  b.Retire([&freed_b]() { freed_b = true; });
  EXPECT_EQ(b.Reclaim(), 1u);
  EXPECT_TRUE(freed_b);
  EXPECT_EQ(a.Reclaim(), 0u);
  EXPECT_FALSE(freed_a);
}

}  // namespace
}  // namespace tso
