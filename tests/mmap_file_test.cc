#include "base/mmap_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

namespace tso {
namespace {

/// Writes `content` to a fresh temp file and returns its path.
std::string WriteTempFile(const std::string& name, const std::string& content) {
  const std::string path =
      std::string(::testing::TempDir().empty() ? "/tmp" : ::testing::TempDir())
          .append("/")
          .append(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  return path;
}

TEST(MmapFileTest, OpenReadsContent) {
  const std::string path = WriteTempFile("mmap_basic.bin", "hello mapped");
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->view(), "hello mapped");
  std::remove(path.c_str());
}

TEST(MmapFileTest, OpenMissingFileFails) {
  StatusOr<MmapFile> file = MmapFile::Open("/nonexistent/tso-mmap-test");
  EXPECT_FALSE(file.ok());
}

TEST(MmapFileTest, EmptyFileMapsToEmptyView) {
  const std::string path = WriteTempFile("mmap_empty.bin", "");
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size(), 0u);
  EXPECT_EQ(file->data(), nullptr);
  file->Close();  // no-op on an empty mapping
  std::remove(path.c_str());
}

// Regression: Close() must be idempotent — a second Close (and the
// destructor after an explicit Close) must not munmap the same range twice,
// which could tear down an unrelated mapping placed there in the meantime.
TEST(MmapFileTest, DoubleCloseIsSafe) {
  const std::string path = WriteTempFile("mmap_double_close.bin", "payload");
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_NE(file->data(), nullptr);
  file->Close();
  EXPECT_EQ(file->data(), nullptr);
  EXPECT_EQ(file->size(), 0u);
  file->Close();  // second close: no-op
  EXPECT_EQ(file->data(), nullptr);
  std::remove(path.c_str());
  // Destructor runs after the explicit closes: must also be a no-op.
}

// Regression: a moved-from MmapFile must not unmap the pages it handed
// away — the destination (and anyone reading through it) still uses them.
TEST(MmapFileTest, MovedFromDoesNotUnmap) {
  const std::string path = WriteTempFile("mmap_moved_from.bin", "still here");
  StatusOr<MmapFile> opened = MmapFile::Open(path);
  ASSERT_TRUE(opened.ok());
  MmapFile dst(std::move(*opened));
  {
    MmapFile src = std::move(dst);
    dst = std::move(src);
    // `src` is moved-from here; its destructor and an explicit Close must
    // leave dst's mapping intact.
    src.Close();
  }
  EXPECT_EQ(dst.view(), "still here");
  std::remove(path.c_str());
}

TEST(MmapFileTest, MoveAssignReleasesPreviousMapping) {
  const std::string path_a = WriteTempFile("mmap_move_a.bin", "aaaa");
  const std::string path_b = WriteTempFile("mmap_move_b.bin", "bbbb");
  StatusOr<MmapFile> a = MmapFile::Open(path_a);
  StatusOr<MmapFile> b = MmapFile::Open(path_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Overwriting a live mapping must unmap it exactly once (ASan/LSan would
  // flag a leak or double-unmap) and adopt the source's pages.
  *a = std::move(*b);
  EXPECT_EQ(a->view(), "bbbb");
  EXPECT_EQ(b->data(), nullptr);  // moved-from: empty
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace tso
