#include "mesh/point_locator.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "mesh/mesh_builder.h"
#include "terrain/terrain_synth.h"

namespace tso {
namespace {

TEST(PointLocator, LocatesInteriorPoints) {
  StatusOr<TerrainMesh> mesh = MeshFromFunction(
      8, 8, 1.0, [](double x, double y) { return 0.2 * x + 0.1 * y; });
  ASSERT_TRUE(mesh.ok());
  PointLocator locator(*mesh);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.UniformDouble(0.0, 7.0);
    const double y = rng.UniformDouble(0.0, 7.0);
    StatusOr<SurfacePoint> p = locator.Locate(x, y);
    ASSERT_TRUE(p.ok()) << "(" << x << "," << y << ")";
    EXPECT_NEAR(p->pos.x, x, 1e-12);
    EXPECT_NEAR(p->pos.y, y, 1e-12);
    // Height field z = 0.2x + 0.1y is linear, so interpolation is exact.
    EXPECT_NEAR(p->pos.z, 0.2 * x + 0.1 * y, 1e-9);
    ASSERT_LT(p->face, mesh->num_faces());
  }
}

TEST(PointLocator, OutsideReturnsNotFound) {
  StatusOr<TerrainMesh> mesh =
      MeshFromFunction(4, 4, 1.0, [](double, double) { return 0.0; });
  ASSERT_TRUE(mesh.ok());
  PointLocator locator(*mesh);
  EXPECT_EQ(locator.Locate(-5.0, 1.0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(locator.Locate(1.0, 99.0).status().code(), StatusCode::kNotFound);
}

TEST(PointLocator, CornersAndEdges) {
  StatusOr<TerrainMesh> mesh =
      MeshFromFunction(4, 4, 1.0, [](double, double) { return 1.0; });
  ASSERT_TRUE(mesh.ok());
  PointLocator locator(*mesh);
  EXPECT_TRUE(locator.Locate(0.0, 0.0).ok());
  EXPECT_TRUE(locator.Locate(3.0, 3.0).ok());
  EXPECT_TRUE(locator.Locate(1.0, 1.0).ok());  // grid vertex
  EXPECT_TRUE(locator.Locate(0.5, 0.0).ok());  // boundary edge
}

TEST(PointLocator, ConsistentWithSyntheticTerrain) {
  SynthSpec spec;
  spec.extent_x = 500;
  spec.extent_y = 400;
  spec.seed = 77;
  StatusOr<TerrainMesh> mesh = SynthesizeMesh(spec, 500);
  ASSERT_TRUE(mesh.ok());
  PointLocator locator(*mesh);
  Rng rng(9);
  int found = 0;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformDouble(0, 500);
    const double y = rng.UniformDouble(0, 400);
    StatusOr<SurfacePoint> p = locator.Locate(x, y);
    if (p.ok()) {
      ++found;
      const Aabb& bb = mesh->bounding_box();
      EXPECT_GE(p->pos.z, bb.min.z - 1e-9);
      EXPECT_LE(p->pos.z, bb.max.z + 1e-9);
    }
  }
  EXPECT_GT(found, 190);  // nearly all interior points located
}

}  // namespace
}  // namespace tso
