#include "terrain/terrain_synth.h"

#include <set>

#include <gtest/gtest.h>

#include "terrain/dataset.h"
#include "terrain/poi_generator.h"

namespace tso {
namespace {

TEST(TerrainSynth, DeterministicBySeed) {
  SynthSpec spec;
  spec.seed = 5;
  EXPECT_EQ(SampleHeight(spec, 100.0, 200.0), SampleHeight(spec, 100.0, 200.0));
  SynthSpec other = spec;
  other.seed = 6;
  EXPECT_NE(SampleHeight(spec, 100.0, 200.0),
            SampleHeight(other, 100.0, 200.0));
}

TEST(TerrainSynth, HeightsWithinAmplitude) {
  SynthSpec spec;
  spec.amplitude = 300.0;
  for (int i = 0; i < 500; ++i) {
    const double h = SampleHeight(spec, i * 13.7, i * 7.3);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 300.0);
  }
}

TEST(TerrainSynth, MeshTargetsVertexCount) {
  SynthSpec spec;
  StatusOr<TerrainMesh> mesh = SynthesizeMesh(spec, 2000);
  ASSERT_TRUE(mesh.ok());
  EXPECT_GT(mesh->num_vertices(), 1200u);
  EXPECT_LT(mesh->num_vertices(), 2800u);
  EXPECT_TRUE(mesh->Validate().ok());
  // Covers the requested extent.
  const Aabb& bb = mesh->bounding_box();
  EXPECT_NEAR(bb.max.x - bb.min.x, spec.extent_x, spec.extent_x * 0.01);
  EXPECT_NEAR(bb.max.y - bb.min.y, spec.extent_y, spec.extent_y * 0.01);
}

TEST(TerrainSynth, RidgedDiffersFromSmooth) {
  SynthSpec ridged;
  ridged.ridged = true;
  SynthSpec smooth = ridged;
  smooth.ridged = false;
  EXPECT_NE(SampleHeight(ridged, 123.0, 456.0),
            SampleHeight(smooth, 123.0, 456.0));
}

TEST(PoiGenerator, UniformCountAndUniqueness) {
  StatusOr<Dataset> ds = MakePaperDataset(PaperDataset::kSanFranciscoSmall,
                                          500, 40, 11);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->pois.size(), 40u);
  std::set<std::tuple<double, double, double>> seen;
  for (const auto& p : ds->pois) {
    seen.insert({p.pos.x, p.pos.y, p.pos.z});
    ASSERT_LT(p.face, ds->mesh->num_faces());
  }
  EXPECT_EQ(seen.size(), 40u);  // no duplicates
}

TEST(PoiGenerator, DeterministicBySeed) {
  StatusOr<Dataset> a =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, 20, 3);
  StatusOr<Dataset> b =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, 20, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->pois.size(); ++i) {
    EXPECT_EQ(a->pois[i].pos, b->pois[i].pos);
  }
}

TEST(PoiGenerator, NormalFitExtension) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 600, 30, 5);
  ASSERT_TRUE(ds.ok());
  Rng rng(8);
  std::vector<SurfacePoint> extended = ExtendPoisNormalFit(
      *ds->mesh, *ds->locator, ds->pois, 90, rng);
  EXPECT_EQ(extended.size(), 90u);
  // The base POIs are preserved as a prefix.
  for (size_t i = 0; i < ds->pois.size(); ++i) {
    EXPECT_EQ(extended[i].pos, ds->pois[i].pos);
  }
  // New points are inside the terrain extent.
  const Aabb& bb = ds->mesh->bounding_box();
  for (const auto& p : extended) {
    EXPECT_GE(p.pos.x, bb.min.x - 1e-6);
    EXPECT_LE(p.pos.x, bb.max.x + 1e-6);
  }
}

TEST(PoiGenerator, VertexModes) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 10, 5);
  ASSERT_TRUE(ds.ok());
  std::vector<SurfacePoint> all = PoisFromAllVertices(*ds->mesh);
  EXPECT_EQ(all.size(), ds->mesh->num_vertices());
  EXPECT_TRUE(all[0].is_vertex());

  Rng rng(2);
  std::vector<SurfacePoint> sub = PoisFromRandomVertices(*ds->mesh, 25, rng);
  EXPECT_EQ(sub.size(), 25u);
  std::set<uint32_t> ids;
  for (const auto& p : sub) ids.insert(p.vertex);
  EXPECT_EQ(ids.size(), 25u);
}

TEST(Dataset, PaperPresetsMatchTable2Regions) {
  struct Case {
    PaperDataset which;
    double rx, ry;
  };
  // Table 2 regions (km).
  const Case cases[] = {{PaperDataset::kBearHead, 14000, 10000},
                        {PaperDataset::kEaglePeak, 10700, 14000},
                        {PaperDataset::kSanFrancisco, 14000, 11100}};
  for (const Case& c : cases) {
    StatusOr<Dataset> ds = MakePaperDataset(c.which, 2000, 50, 1);
    ASSERT_TRUE(ds.ok());
    EXPECT_EQ(ds->region_x, c.rx);
    EXPECT_EQ(ds->region_y, c.ry);
    EXPECT_GT(ds->N(), 1000u);
    EXPECT_EQ(ds->n(), 50u);
  }
}

TEST(Dataset, NamesStable) {
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kBearHead), "BH");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kEaglePeak), "EP");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kSanFrancisco), "SF");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kSanFranciscoSmall),
               "SF-small");
}

TEST(Dataset, FromArbitraryMesh) {
  SynthSpec spec;
  spec.extent_x = 300;
  spec.extent_y = 300;
  spec.seed = 12;
  StatusOr<TerrainMesh> mesh = SynthesizeMesh(spec, 400);
  ASSERT_TRUE(mesh.ok());
  StatusOr<Dataset> ds = MakeDataset("custom", std::move(*mesh), 15, 9);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->name, "custom");
  EXPECT_EQ(ds->n(), 15u);
}

}  // namespace
}  // namespace tso
