// Property tests for the shared SSAD kernel (indexed d-ary heap with
// decrease-key + bucketed target settlement) pitting the kernel-backed
// solvers against a reference lazy-deletion std::priority_queue Dijkstra:
// settle-order ties aside, distances must agree across vertex/face sources,
// radius bounds, and stop-/cover-target modes.

#include "geodesic/ssad_kernel.h"

#include <array>
#include <cmath>
#include <queue>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "geodesic/steiner_graph.h"
#include "geodesic/steiner_solver.h"
#include "mesh/point_locator.h"
#include "terrain/poi_generator.h"
#include "terrain/terrain_synth.h"

namespace tso {
namespace {

TerrainMesh RuggedMesh(uint32_t target_vertices, uint64_t seed) {
  SynthSpec spec;
  spec.extent_x = 900.0;
  spec.extent_y = 700.0;
  spec.amplitude = 220.0;
  spec.feature_size = 240.0;
  spec.seed = seed;
  StatusOr<TerrainMesh> mesh = SynthesizeMesh(spec, target_vertices);
  TSO_CHECK(mesh.ok());
  return std::move(*mesh);
}

/// Reference Dijkstra with a lazy-deletion std::priority_queue (the
/// implementation the kernel replaced): distances over an abstract graph
/// from multi-source seeds, stopping past `radius_bound`.
template <typename NeighborFn>
std::vector<double> ReferenceDijkstra(
    size_t num_nodes, const std::vector<std::pair<uint32_t, double>>& seeds,
    double radius_bound, NeighborFn&& neighbors) {
  struct Entry {
    double key;
    uint32_t node;
    bool operator>(const Entry& o) const { return key > o.key; }
  };
  std::vector<double> dist(num_nodes, kInfDist);
  std::vector<uint8_t> settled(num_nodes, 0);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (const auto& [node, d] : seeds) {
    if (d < dist[node]) {
      dist[node] = d;
      queue.push({d, node});
    }
  }
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node] || top.key > dist[top.node]) continue;
    settled[top.node] = 1;
    if (top.key > radius_bound) break;
    neighbors(top.node, [&](uint32_t to, double w) {
      const double nd = top.key + w;
      if (nd < dist[to]) {
        dist[to] = nd;
        queue.push({nd, to});
      }
    });
  }
  // Only settled entries are final; tentative ones are upper bounds, which
  // is exactly what the solvers report too.
  return dist;
}

std::vector<std::pair<uint32_t, double>> MeshSeeds(const TerrainMesh& mesh,
                                                   const SurfacePoint& src) {
  std::vector<std::pair<uint32_t, double>> seeds;
  if (src.is_vertex()) {
    seeds.emplace_back(src.vertex, 0.0);
  } else {
    for (uint32_t v : mesh.face(src.face)) {
      seeds.emplace_back(v, Distance(src.pos, mesh.vertex(v)));
    }
  }
  return seeds;
}

std::vector<double> RefMeshDistances(const TerrainMesh& mesh,
                                     const SurfacePoint& src, double bound) {
  return ReferenceDijkstra(
      mesh.num_vertices(), MeshSeeds(mesh, src), bound,
      [&](uint32_t v, auto&& relax) {
        for (uint32_t e : mesh.vertex_edges(v)) {
          const TerrainMesh::Edge& ed = mesh.edge(e);
          relax(ed.v0 == v ? ed.v1 : ed.v0, ed.length);
        }
      });
}

std::vector<double> RefGraphDistances(const SteinerGraph& graph,
                                      const SurfacePoint& src, double bound) {
  std::vector<std::pair<uint32_t, double>> seeds;
  if (src.is_vertex()) {
    seeds.emplace_back(graph.VertexNode(src.vertex), 0.0);
  } else {
    std::vector<uint32_t> nodes;
    graph.FaceNodes(src.face, &nodes);
    for (uint32_t node : nodes) {
      seeds.emplace_back(node, Distance(src.pos, graph.node_pos(node)));
    }
  }
  return ReferenceDijkstra(graph.num_nodes(), seeds, bound,
                           [&](uint32_t node, auto&& relax) {
                             for (const auto& ge : graph.Neighbors(node)) {
                               relax(ge.to, ge.weight);
                             }
                           });
}

SurfacePoint RandomSource(const TerrainMesh& mesh, Rng& rng) {
  if (rng.Bernoulli(0.5)) {
    return SurfacePoint::AtVertex(
        mesh, static_cast<uint32_t>(rng.Uniform(mesh.num_vertices())));
  }
  const uint32_t f = static_cast<uint32_t>(rng.Uniform(mesh.num_faces()));
  return SurfacePoint::OnFace(f, mesh.FaceCentroid(f));
}

// --- Kernel data structure in isolation ---

TEST(SsadKernelHeap, RandomizedDecreaseKeyPopsSortedAndMinimal) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 1 + rng.Uniform(256);
    SsadKernel kernel(n);
    kernel.Begin();
    std::vector<double> best(n, kInfDist);
    const int ops = 1 + static_cast<int>(rng.Uniform(800));
    for (int k = 0; k < ops; ++k) {
      const uint32_t node = static_cast<uint32_t>(rng.Uniform(n));
      const double key = rng.UniformDouble(0.0, 100.0);
      kernel.Relax(node, key);
      best[node] = std::min(best[node], key);
      EXPECT_EQ(kernel.dist(node), best[node]);
    }
    double last = 0.0;
    size_t popped = 0;
    while (!kernel.Empty()) {
      const auto [node, key] = kernel.PopSettle();
      EXPECT_GE(key, last);
      EXPECT_EQ(key, best[node]) << "node " << node;
      EXPECT_TRUE(kernel.IsSettled(node));
      last = key;
      ++popped;
    }
    size_t expected = 0;
    for (double b : best) {
      if (b < kInfDist) ++expected;
    }
    EXPECT_EQ(popped, expected);
    kernel.Finish();
  }
}

TEST(SsadKernelHeap, EpochReuseIsolatesRuns) {
  SsadKernel kernel(8);
  kernel.Begin();
  kernel.Relax(3, 1.5);
  kernel.PopSettle();
  kernel.Finish();
  EXPECT_EQ(kernel.dist(3), 1.5);
  kernel.Begin();
  EXPECT_EQ(kernel.dist(3), kInfDist);
  EXPECT_FALSE(kernel.IsSettled(3));
  EXPECT_TRUE(kernel.Empty());
}

TEST(SsadKernelTargets, BucketedSettlementResolvesInOrder) {
  SsadKernel kernel(6);
  kernel.Begin();
  for (uint32_t v = 0; v < 6; ++v) kernel.Relax(v, 1.0 + v);
  const std::vector<uint32_t> t0 = {0};
  const std::vector<uint32_t> t1 = {1, 4};
  const std::vector<uint32_t> none;
  const uint32_t a = kernel.AddTarget(t0);
  const uint32_t b = kernel.AddTarget(t1);
  const uint32_t c = kernel.AddTarget(none);  // unresolvable
  EXPECT_EQ(kernel.unresolved_targets(), 3u);
  kernel.PopSettle();  // node 0
  EXPECT_TRUE(kernel.TargetResolved(a));
  EXPECT_FALSE(kernel.TargetResolved(b));
  kernel.PopSettle();  // node 1
  EXPECT_FALSE(kernel.TargetResolved(b));
  kernel.PopSettle();  // node 2
  kernel.PopSettle();  // node 3
  kernel.PopSettle();  // node 4
  EXPECT_TRUE(kernel.TargetResolved(b));
  EXPECT_FALSE(kernel.TargetResolved(c));
  EXPECT_EQ(kernel.unresolved_targets(), 1u);  // the unresolvable one
  kernel.Finish();
}

// --- Solver-level equivalence with the reference implementation ---

TEST(SsadKernelVsReference, DijkstraFullRuns) {
  const TerrainMesh mesh = RuggedMesh(400, 11);
  DijkstraSolver solver(mesh);
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    const SurfacePoint src = RandomSource(mesh, rng);
    ASSERT_TRUE(solver.Run(src, {}).ok());
    EXPECT_EQ(solver.frontier(), kInfDist);
    const std::vector<double> ref = RefMeshDistances(mesh, src, kInfDist);
    for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
      EXPECT_NEAR(solver.VertexDistance(v), ref[v], 1e-9 * (1.0 + ref[v]))
          << "trial " << trial << " vertex " << v;
    }
  }
}

TEST(SsadKernelVsReference, SteinerFullRuns) {
  const TerrainMesh mesh = RuggedMesh(250, 13);
  StatusOr<SteinerGraph> graph = SteinerGraph::Build(mesh, 2);
  ASSERT_TRUE(graph.ok());
  SteinerSolver solver(*graph);
  Rng rng(103);
  for (int trial = 0; trial < 6; ++trial) {
    const SurfacePoint src = RandomSource(mesh, rng);
    ASSERT_TRUE(solver.Run(src, {}).ok());
    const std::vector<double> ref = RefGraphDistances(*graph, src, kInfDist);
    for (uint32_t node = 0; node < graph->num_nodes(); ++node) {
      EXPECT_NEAR(solver.NodeDistance(node), ref[node],
                  1e-9 * (1.0 + ref[node]))
          << "trial " << trial << " node " << node;
    }
  }
}

TEST(SsadKernelVsReference, RadiusBoundedRuns) {
  const TerrainMesh mesh = RuggedMesh(400, 17);
  DijkstraSolver solver(mesh);
  Rng rng(107);
  for (int trial = 0; trial < 8; ++trial) {
    const SurfacePoint src = RandomSource(mesh, rng);
    const double bound = rng.UniformDouble(100.0, 600.0);
    SsadOptions opts;
    opts.radius_bound = bound;
    ASSERT_TRUE(solver.Run(src, opts).ok());
    const std::vector<double> ref = RefMeshDistances(mesh, src, kInfDist);
    for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
      if (ref[v] <= bound) {
        EXPECT_NEAR(solver.VertexDistance(v), ref[v], 1e-9 * (1.0 + ref[v]))
            << "trial " << trial << " vertex " << v << " bound " << bound;
      }
    }
  }
}

TEST(SsadKernelVsReference, StopTargetDistancesExact) {
  const TerrainMesh mesh = RuggedMesh(400, 19);
  DijkstraSolver early(mesh);
  DijkstraSolver full(mesh);
  Rng rng(109);
  for (int trial = 0; trial < 8; ++trial) {
    const SurfacePoint src = RandomSource(mesh, rng);
    const SurfacePoint dst = RandomSource(mesh, rng);
    SsadOptions opts;
    opts.stop_target = &dst;
    ASSERT_TRUE(early.Run(src, opts).ok());
    ASSERT_TRUE(full.Run(src, {}).ok());
    const double want = full.PointDistance(dst);
    EXPECT_NEAR(early.PointDistance(dst), want, 1e-9 * (1.0 + want))
        << "trial " << trial;
  }
}

TEST(SsadKernelVsReference, CoverTargetDistancesExact) {
  const TerrainMesh mesh = RuggedMesh(400, 23);
  PointLocator locator(mesh);
  Rng rng(113);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<SurfacePoint> targets =
        GenerateUniformPois(mesh, locator, 3 + trial * 5, rng);
    DijkstraSolver covering(mesh);
    DijkstraSolver full(mesh);
    const SurfacePoint src = RandomSource(mesh, rng);
    SsadOptions opts;
    opts.cover_targets = &targets;
    ASSERT_TRUE(covering.Run(src, opts).ok());
    ASSERT_TRUE(full.Run(src, {}).ok());
    for (const SurfacePoint& t : targets) {
      const double want = full.PointDistance(t);
      EXPECT_NEAR(covering.PointDistance(t), want, 1e-9 * (1.0 + want));
    }
  }
}

TEST(SsadKernelVsReference, SteinerCoverAndRadiusCombined) {
  const TerrainMesh mesh = RuggedMesh(250, 29);
  PointLocator locator(mesh);
  StatusOr<SteinerGraph> graph = SteinerGraph::Build(mesh, 1);
  ASSERT_TRUE(graph.ok());
  Rng rng(127);
  std::vector<SurfacePoint> targets = GenerateUniformPois(mesh, locator, 9,
                                                          rng);
  SteinerSolver bounded(*graph);
  SteinerSolver full(*graph);
  const SurfacePoint src = RandomSource(mesh, rng);
  SsadOptions opts;
  opts.cover_targets = &targets;
  opts.radius_bound = 350.0;
  ASSERT_TRUE(bounded.Run(src, opts).ok());
  ASSERT_TRUE(full.Run(src, {}).ok());
  for (const SurfacePoint& t : targets) {
    const double want = full.PointDistance(t);
    // Combined stopping: exact for anything final before the radius bound.
    if (want <= 350.0 && bounded.PointDistance(t) <= bounded.frontier()) {
      EXPECT_NEAR(bounded.PointDistance(t), want, 1e-9 * (1.0 + want));
    }
  }
}

// --- Multi-source batching ---

TEST(SsadKernelBatch, BatchOfOneMatchesSingleSourceOnEverySolver) {
  const TerrainMesh mesh = RuggedMesh(300, 37);
  StatusOr<SteinerGraph> graph = SteinerGraph::Build(mesh, 2);
  ASSERT_TRUE(graph.ok());
  DijkstraSolver dijkstra_run(mesh), dijkstra_batch(mesh);
  SteinerSolver steiner_run(*graph), steiner_batch(*graph);
  MmpSolver mmp_run(mesh), mmp_batch(mesh);
  const std::array<std::pair<GeodesicSolver*, GeodesicSolver*>, 3> solvers = {
      {{&dijkstra_run, &dijkstra_batch},
       {&steiner_run, &steiner_batch},
       {&mmp_run, &mmp_batch}}};
  Rng rng(131);
  for (const auto& [run, batch] : solvers) {
    for (int trial = 0; trial < 3; ++trial) {
      const SurfacePoint src = RandomSource(mesh, rng);
      SsadOptions opts;
      if (trial == 1) opts.radius_bound = 300.0;
      ASSERT_TRUE(run->Run(src, opts).ok()) << run->name();
      ASSERT_TRUE(batch->SolveBatch({&src, 1}, opts).ok()) << run->name();
      EXPECT_EQ(batch->frontier(), run->frontier()) << run->name();
      for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
        EXPECT_EQ(batch->BatchVertexDistance(0, v), run->VertexDistance(v))
            << run->name() << " trial " << trial << " vertex " << v;
      }
      for (int probe = 0; probe < 10; ++probe) {
        const SurfacePoint p = RandomSource(mesh, rng);
        EXPECT_EQ(batch->BatchPointDistance(0, p), run->PointDistance(p))
            << run->name() << " trial " << trial;
      }
    }
  }
}

TEST(SsadKernelBatch, OversizedBatchAndTargetsRejected) {
  const TerrainMesh mesh = RuggedMesh(200, 41);
  DijkstraSolver solver(mesh);
  Rng rng(137);
  std::vector<SurfacePoint> sources;
  for (int i = 0; i < 3; ++i) sources.push_back(RandomSource(mesh, rng));
  EXPECT_FALSE(solver.SolveBatch({sources.data(), 0}, {}).ok());
  std::vector<SurfacePoint> oversized(solver.max_batch() + 1, sources[0]);
  EXPECT_FALSE(solver.SolveBatch(oversized, {}).ok());
  SsadOptions with_target;
  const SurfacePoint t = RandomSource(mesh, rng);
  with_target.stop_target = &t;
  EXPECT_FALSE(solver.SolveBatch(sources, with_target).ok());
  // A batch of 1 is exactly Run(), so targets are fine there.
  EXPECT_TRUE(solver.SolveBatch({sources.data(), 1}, with_target).ok());
  // MMP has no native batching: only singleton batches are accepted.
  MmpSolver mmp(mesh);
  EXPECT_EQ(mmp.max_batch(), 1u);
  EXPECT_FALSE(mmp.SolveBatch(sources, {}).ok());
}

/// The core equivalence property: per-source distances of one group sweep
/// must be bitwise identical to K independent runs — and to the reference
/// lazy-deletion std::priority_queue Dijkstra — for every node within the
/// radius bound (everywhere, for unbounded runs).
TEST(SsadKernelBatch, RandomKSourceDijkstraMatchesIndependentRunsAndRefPq) {
  const TerrainMesh mesh = RuggedMesh(400, 43);
  DijkstraSolver batch_solver(mesh);
  DijkstraSolver single(mesh);
  Rng rng(139);
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t k = 2 + static_cast<uint32_t>(rng.Uniform(7));  // 2..8
    std::vector<SurfacePoint> sources;
    for (uint32_t s = 0; s < k; ++s) sources.push_back(RandomSource(mesh, rng));
    SsadOptions opts;
    const bool bounded = trial % 2 == 0;
    if (bounded) opts.radius_bound = rng.UniformDouble(150.0, 500.0);
    ASSERT_TRUE(batch_solver.SolveBatch(sources, opts).ok());
    for (uint32_t s = 0; s < k; ++s) {
      ASSERT_TRUE(single.Run(sources[s], opts).ok());
      const std::vector<double> ref =
          RefMeshDistances(mesh, sources[s], kInfDist);
      for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
        if (ref[v] > opts.radius_bound) continue;
        EXPECT_EQ(batch_solver.BatchVertexDistance(s, v),
                  single.VertexDistance(v))
            << "trial " << trial << " source " << s << " vertex " << v;
        EXPECT_EQ(batch_solver.BatchVertexDistance(s, v), ref[v])
            << "trial " << trial << " source " << s << " vertex " << v;
      }
    }
  }
}

TEST(SsadKernelBatch, RandomKSourceSteinerMatchesIndependentRunsAndRefPq) {
  const TerrainMesh mesh = RuggedMesh(250, 47);
  StatusOr<SteinerGraph> graph = SteinerGraph::Build(mesh, 2);
  ASSERT_TRUE(graph.ok());
  SteinerSolver batch_solver(*graph);
  SteinerSolver single(*graph);
  Rng rng(149);
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t k = 2 + static_cast<uint32_t>(rng.Uniform(7));  // 2..8
    std::vector<SurfacePoint> sources;
    for (uint32_t s = 0; s < k; ++s) sources.push_back(RandomSource(mesh, rng));
    SsadOptions opts;
    const bool bounded = trial % 2 == 1;
    if (bounded) opts.radius_bound = rng.UniformDouble(200.0, 600.0);
    ASSERT_TRUE(batch_solver.SolveBatch(sources, opts).ok());
    for (uint32_t s = 0; s < k; ++s) {
      ASSERT_TRUE(single.Run(sources[s], opts).ok());
      const std::vector<double> ref =
          RefGraphDistances(*graph, sources[s], kInfDist);
      for (uint32_t node = 0; node < graph->num_nodes(); ++node) {
        if (ref[node] > opts.radius_bound) continue;
        EXPECT_EQ(batch_solver.BatchNodeDistance(s, node),
                  single.NodeDistance(node))
            << "trial " << trial << " source " << s << " node " << node;
        EXPECT_EQ(batch_solver.BatchNodeDistance(s, node), ref[node])
            << "trial " << trial << " source " << s << " node " << node;
      }
    }
  }
}

TEST(SsadKernelBatch, BatchRunsDoNotDisturbSingleSourceRuns) {
  // Interleave batch and single-source runs on one kernel-backed solver:
  // epoch stamping must isolate the modes completely.
  const TerrainMesh mesh = RuggedMesh(300, 53);
  DijkstraSolver solver(mesh);
  DijkstraSolver fresh(mesh);
  Rng rng(151);
  for (int round = 0; round < 3; ++round) {
    std::vector<SurfacePoint> sources;
    for (int s = 0; s < 4; ++s) sources.push_back(RandomSource(mesh, rng));
    ASSERT_TRUE(solver.SolveBatch(sources, {}).ok());
    const SurfacePoint src = RandomSource(mesh, rng);
    ASSERT_TRUE(solver.Run(src, {}).ok());
    ASSERT_TRUE(fresh.Run(src, {}).ok());
    for (uint32_t v = 0; v < mesh.num_vertices(); ++v) {
      ASSERT_EQ(solver.VertexDistance(v), fresh.VertexDistance(v))
          << "round " << round << " vertex " << v;
    }
  }
}

TEST(SsadKernelCounters, GlobalCountersAdvanceAcrossRuns) {
  const TerrainMesh mesh = RuggedMesh(200, 31);
  const SsadCounterSnapshot before = SsadCounterSnapshot::Take();
  DijkstraSolver solver(mesh);
  ASSERT_TRUE(solver.Run(SurfacePoint::AtVertex(mesh, 0), {}).ok());
  const SsadCounterSnapshot delta =
      SsadCounterSnapshot::Take().Delta(before);
  EXPECT_EQ(delta.runs, 1u);
  EXPECT_EQ(delta.settles, mesh.num_vertices());
  EXPECT_GE(delta.pushes, delta.settles);
  EXPECT_GE(delta.relaxations, delta.pushes + delta.decrease_keys);
}

}  // namespace
}  // namespace tso
