#include <cmath>

#include <gtest/gtest.h>

#include "baselines/full_materialization.h"
#include "baselines/kalgo.h"
#include "baselines/sp_oracle.h"
#include "geodesic/mmp_solver.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

TEST(FullMaterialization, MatchesSolver) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 12, 3);
  ASSERT_TRUE(ds.ok());
  MmpSolver solver(*ds->mesh);
  StatusOr<FullMaterialization> fm =
      FullMaterialization::Build(ds->pois, solver);
  ASSERT_TRUE(fm.ok());
  for (uint32_t s = 0; s < ds->pois.size(); ++s) {
    for (uint32_t t = 0; t < ds->pois.size(); ++t) {
      const double want =
          s == t ? 0.0
                 : solver.PointToPoint(ds->pois[s], ds->pois[t]).value();
      EXPECT_NEAR(fm->Distance(s, t), want, 1e-6 * (1.0 + want));
      EXPECT_EQ(fm->Distance(s, t), fm->Distance(t, s));
    }
  }
  EXPECT_EQ(fm->num_pois(), 12u);
  EXPECT_GT(fm->SizeBytes(), 12u * 11u / 2u * sizeof(double));
}

TEST(KAlgo, WithinEpsilonOfExact) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 8, 5);
  ASSERT_TRUE(ds.ok());
  MmpSolver exact(*ds->mesh);
  const double eps = 0.1;
  StatusOr<KAlgo> kalgo = KAlgo::Create(*ds->mesh, eps);
  ASSERT_TRUE(kalgo.ok());
  EXPECT_GT(kalgo->graph_nodes(), ds->mesh->num_vertices());
  for (size_t i = 0; i < ds->pois.size(); ++i) {
    for (size_t j = i + 1; j < ds->pois.size(); ++j) {
      StatusOr<double> approx = kalgo->Distance(ds->pois[i], ds->pois[j]);
      ASSERT_TRUE(approx.ok());
      const double truth =
          exact.PointToPoint(ds->pois[i], ds->pois[j]).value();
      EXPECT_GE(*approx, truth * (1.0 - 1e-9));  // graph paths upper-bound
      EXPECT_LE(*approx, truth * (1.0 + eps) + 1e-9)
          << "pair " << i << "," << j;
    }
  }
}

TEST(KAlgo, TighterEpsilonTighterAnswers) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 300, 6, 7);
  ASSERT_TRUE(ds.ok());
  StatusOr<KAlgo> loose = KAlgo::Create(*ds->mesh, 0.5);
  StatusOr<KAlgo> tight = KAlgo::Create(*ds->mesh, 0.05);
  ASSERT_TRUE(loose.ok() && tight.ok());
  for (size_t i = 0; i + 1 < ds->pois.size(); ++i) {
    const double dl = loose->Distance(ds->pois[i], ds->pois[i + 1]).value();
    const double dt = tight->Distance(ds->pois[i], ds->pois[i + 1]).value();
    EXPECT_LE(dt, dl * (1.0 + 1e-9));
  }
}

TEST(KAlgo, InvalidEpsilonRejected) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 200, 5, 9);
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(KAlgo::Create(*ds->mesh, 0.0).ok());
  EXPECT_FALSE(KAlgo::Create(*ds->mesh, -0.5).ok());
}

TEST(SpOracle, AnswersWithinCombinedBudget) {
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 250, 8, 11);
  ASSERT_TRUE(ds.ok());
  MmpSolver exact(*ds->mesh);
  SpOracleOptions options;
  options.epsilon = 0.15;
  options.steiner_points_per_edge = 2;
  SpBuildStats stats;
  StatusOr<SpOracle> oracle = SpOracle::Build(*ds->mesh, options, &stats);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_GT(stats.steiner_nodes, ds->mesh->num_vertices());
  for (size_t i = 0; i < ds->pois.size(); ++i) {
    for (size_t j = i + 1; j < ds->pois.size(); ++j) {
      StatusOr<double> d = oracle->Distance(ds->pois[i], ds->pois[j]);
      ASSERT_TRUE(d.ok());
      const double truth =
          exact.PointToPoint(ds->pois[i], ds->pois[j]).value();
      EXPECT_GE(*d, truth * (1.0 - options.epsilon) - 1e-9);
      EXPECT_LE(*d, truth * (1.0 + options.epsilon + 0.2) + 1e-9);
    }
  }
}

TEST(SpOracle, SizeIndependentOfPois) {
  // The defining weakness vs SE: SP-Oracle's size is driven by N (Steiner
  // machinery), not by the number of POIs.
  StatusOr<Dataset> ds =
      MakePaperDataset(PaperDataset::kSanFranciscoSmall, 250, 5, 13);
  ASSERT_TRUE(ds.ok());
  SpOracleOptions options;
  options.epsilon = 0.25;
  options.steiner_points_per_edge = 1;
  StatusOr<SpOracle> oracle = SpOracle::Build(*ds->mesh, options, nullptr);
  ASSERT_TRUE(oracle.ok());
  // Many more index entries than the 5 POIs could ever need.
  EXPECT_GT(oracle->SizeBytes(), 5u * 5u * sizeof(double) * 10);
}

}  // namespace
}  // namespace tso
