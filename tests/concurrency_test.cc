// Thread-safety of the query stack: a single immutable SeOracle probed from
// many threads must give bitwise-identical answers to the serial path, with
// no data races (this suite is the target of the ThreadSanitizer CI job).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/dynamic_oracle.h"
#include "geodesic/dijkstra_solver.h"
#include "geodesic/mmp_solver.h"
#include "oracle/se_oracle.h"
#include "query/batch.h"
#include "terrain/dataset.h"

namespace tso {
namespace {

constexpr uint32_t kThreads = 8;

// One oracle shared by every test in the suite: queries are read-only, so
// building it once keeps the suite (and the TSan job) fast.
struct SharedOracle {
  std::unique_ptr<Dataset> ds;
  std::unique_ptr<MmpSolver> solver;
  std::unique_ptr<SeOracle> oracle;

  SharedOracle() {
    StatusOr<Dataset> built =
        MakePaperDataset(PaperDataset::kSanFranciscoSmall, 400, 25, 19);
    TSO_CHECK(built.ok());
    ds = std::make_unique<Dataset>(std::move(*built));
    solver = std::make_unique<MmpSolver>(*ds->mesh);
    SeOracleOptions options;
    options.epsilon = 0.1;
    StatusOr<SeOracle> oc =
        SeOracle::Build(*ds->mesh, ds->pois, *solver, options, nullptr);
    TSO_CHECK(oc.ok());
    oracle = std::make_unique<SeOracle>(std::move(*oc));
  }
};

const SharedOracle& Fx() {
  static SharedOracle* fx = new SharedOracle();
  return *fx;
}

std::vector<std::pair<uint32_t, uint32_t>> AllPairs(size_t n) {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) pairs.emplace_back(s, t);
  }
  return pairs;
}

// The hammer: 8 threads sweep every POI pair against answers computed
// serially, half of them through the thread_local overload and half through
// caller-owned scratches. Any shared mutable query state shows up either as
// a mismatch here or as a TSan report.
TEST(Concurrency, EightThreadsMatchSerial) {
  const SharedOracle& fx = Fx();
  const auto pairs = AllPairs(fx.oracle->num_pois());

  std::vector<double> serial(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    serial[i] = fx.oracle->Distance(pairs[i].first, pairs[i].second).value();
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      QueryScratch scratch;
      const bool own_scratch = t % 2 == 0;
      // Start at a per-thread offset so threads collide on different pairs.
      for (size_t j = 0; j < pairs.size(); ++j) {
        const size_t i = (j + t * pairs.size() / kThreads) % pairs.size();
        StatusOr<double> d =
            own_scratch
                ? fx.oracle->Distance(pairs[i].first, pairs[i].second, scratch)
                : fx.oracle->Distance(pairs[i].first, pairs[i].second);
        if (!d.ok()) {
          ++errors;
        } else if (*d != serial[i]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(Concurrency, NaiveQueryMatchesSerialAcrossThreads) {
  const SharedOracle& fx = Fx();
  const auto pairs = AllPairs(fx.oracle->num_pois());
  std::vector<double> serial(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    serial[i] =
        fx.oracle->DistanceNaive(pairs[i].first, pairs[i].second).value();
  }
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      QueryScratch scratch;
      for (size_t i = 0; i < pairs.size(); ++i) {
        StatusOr<double> d =
            fx.oracle->DistanceNaive(pairs[i].first, pairs[i].second, scratch);
        if (!d.ok() || *d != serial[i]) ++mismatches;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(Concurrency, DistanceBatchMatchesSerial) {
  const SharedOracle& fx = Fx();
  Rng rng(23);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < 5000; ++i) {
    pairs.emplace_back(
        static_cast<uint32_t>(rng.Uniform(fx.oracle->num_pois())),
        static_cast<uint32_t>(rng.Uniform(fx.oracle->num_pois())));
  }
  StatusOr<std::vector<double>> serial = DistanceBatch(MakeSource(*fx.oracle), pairs, 1);
  ASSERT_TRUE(serial.ok());
  StatusOr<std::vector<double>> parallel =
      DistanceBatch(MakeSource(*fx.oracle), pairs, kThreads);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*parallel)[i], (*serial)[i]) << i;
  }
}

TEST(Concurrency, DistanceBatchRejectsBadIds) {
  const SharedOracle& fx = Fx();
  std::vector<std::pair<uint32_t, uint32_t>> pairs(500, {0u, 1u});
  pairs[250] = {0u, 9999u};
  EXPECT_FALSE(DistanceBatch(MakeSource(*fx.oracle), pairs, kThreads).ok());
  EXPECT_FALSE(DistanceBatch(MakeSource(*fx.oracle), pairs, 1).ok());
}

TEST(Concurrency, DistanceBatchEmpty) {
  const SharedOracle& fx = Fx();
  StatusOr<std::vector<double>> out = DistanceBatch(MakeSource(*fx.oracle), {}, kThreads);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(Concurrency, ParallelKnnMatchesSerial) {
  const SharedOracle& fx = Fx();
  const size_t n = fx.oracle->num_pois();
  for (uint32_t q : {0u, 7u, 21u}) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{5}, n - 1, n + 10}) {
      StatusOr<std::vector<KnnResult>> serial = KnnQuery(MakeSource(*fx.oracle), q, k);
      StatusOr<std::vector<KnnResult>> parallel =
          KnnQueryParallel(MakeSource(*fx.oracle), q, k, kThreads);
      ASSERT_TRUE(serial.ok() && parallel.ok());
      ASSERT_EQ(parallel->size(), serial->size()) << "q=" << q << " k=" << k;
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*parallel)[i].poi, (*serial)[i].poi);
        EXPECT_EQ((*parallel)[i].distance, (*serial)[i].distance);
      }
    }
  }
  EXPECT_FALSE(KnnQueryParallel(MakeSource(*fx.oracle), 9999, 3, kThreads).ok());
}

TEST(Concurrency, ParallelRangeMatchesSerial) {
  const SharedOracle& fx = Fx();
  for (double radius : {0.0, 300.0, 1000.0, 1e12}) {
    StatusOr<std::vector<uint32_t>> serial =
        RangeQuery(MakeSource(*fx.oracle), 3, radius);
    StatusOr<std::vector<uint32_t>> parallel =
        RangeQueryParallel(MakeSource(*fx.oracle), 3, radius, kThreads);
    ASSERT_TRUE(serial.ok() && parallel.ok());
    EXPECT_EQ(*parallel, *serial) << "radius=" << radius;
  }
  EXPECT_FALSE(RangeQueryParallel(MakeSource(*fx.oracle), 0, -1.0, kThreads).ok());
  EXPECT_FALSE(RangeQueryParallel(MakeSource(*fx.oracle), 9999, 1.0, kThreads).ok());
}

// kNN and range queries issue many oracle probes internally; running them
// concurrently with plain distance probes exercises every query path at
// once on the shared oracle.
TEST(Concurrency, MixedWorkloadHammer) {
  const SharedOracle& fx = Fx();
  const size_t n = fx.oracle->num_pois();
  const std::vector<KnnResult> knn_truth =
      KnnQueryPruned(MakeSource(*fx.oracle), 3, 5).value();
  const std::vector<uint32_t> range_truth =
      RangeQuery(MakeSource(*fx.oracle), 3, 800.0).value();
  const double d_truth = fx.oracle->Distance(1, n - 1).value();

  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int round = 0; round < 20; ++round) {
        switch ((t + round) % 3) {
          case 0: {
            StatusOr<std::vector<KnnResult>> knn =
                KnnQueryPruned(MakeSource(*fx.oracle), 3, 5);
            if (!knn.ok() || knn->size() != knn_truth.size() ||
                (*knn)[0].poi != knn_truth[0].poi) {
              ++failures;
            }
            break;
          }
          case 1: {
            StatusOr<std::vector<uint32_t>> hits =
                RangeQuery(MakeSource(*fx.oracle), 3, 800.0);
            if (!hits.ok() || *hits != range_truth) ++failures;
            break;
          }
          default: {
            StatusOr<double> d = fx.oracle->Distance(1, n - 1);
            if (!d.ok() || *d != d_truth) ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);
}

// DynamicSeOracle many-reader consistency: after mutation quiesces, every
// thread sees bitwise-identical answers on both the base and delta paths
// (the heavier read/write/compact hammer lives in dyn_hammer_test.cc).
TEST(Concurrency, DynamicOracleConcurrentReads) {
  const SharedOracle& fx = Fx();
  std::vector<SurfacePoint> base(fx.ds->pois.begin(),
                                 fx.ds->pois.begin() + 20);
  DynamicOracleOptions options;
  options.base.epsilon = 0.1;
  options.max_delta = 1024;
  options.compaction_ratio = 1.0;  // keep the inserts in the delta
  StatusOr<std::unique_ptr<DynamicSeOracle>> built =
      DynamicSeOracle::Create(*fx.ds->mesh, base, *fx.solver, options);
  ASSERT_TRUE(built.ok());
  DynamicSeOracle& dyn = **built;
  for (size_t i = 20; i < 23; ++i) {
    ASSERT_TRUE(dyn.Insert(fx.ds->pois[i]).ok());
  }

  const size_t n = dyn.num_ids();
  std::vector<double> serial;
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      serial.push_back(dyn.Distance(s, t).value());
    }
  }
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&]() {
      size_t i = 0;
      for (uint32_t s = 0; s < n; ++s) {
        for (uint32_t t = 0; t < n; ++t, ++i) {
          StatusOr<double> d = dyn.Distance(s, t);
          if (!d.ok() || *d != serial[i]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// The parallel build phases (speculative partition-tree SSADs, sharded WSPD
// recursion, enhanced edges) under the race detector: this suite is the TSan
// CI target, so the whole multi-threaded construction path runs here. The
// result must also match the serial build bit-for-bit.
TEST(Concurrency, ParallelOracleBuildRaceFreeAndDeterministic) {
  const SharedOracle& fx = Fx();
  const TerrainMesh& mesh = *fx.ds->mesh;
  DijkstraSolver serial_solver(mesh);
  DijkstraSolver parallel_solver(mesh);
  SeOracleOptions sequential;
  sequential.epsilon = 0.2;
  sequential.seed = 31;
  SeOracleOptions parallel = sequential;
  parallel.parallel_solver_factory = [&mesh]() {
    return std::unique_ptr<GeodesicSolver>(new DijkstraSolver(mesh));
  };
  parallel.num_threads = kThreads;
  SeBuildStats par_stats;
  StatusOr<SeOracle> a =
      SeOracle::Build(mesh, fx.ds->pois, serial_solver, sequential, nullptr);
  StatusOr<SeOracle> b =
      SeOracle::Build(mesh, fx.ds->pois, parallel_solver, parallel,
                      &par_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(par_stats.threads_used, kThreads);
  const size_t n = fx.ds->pois.size();
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      EXPECT_EQ(*a->Distance(s, t), *b->Distance(s, t)) << s << "," << t;
    }
  }
}

}  // namespace
}  // namespace tso
