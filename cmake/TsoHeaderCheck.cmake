# Build-time guard that every public header is self-contained: for each
# src/**/*.h we generate a one-line TU that includes just that header and
# compile them all into an object library. A header that silently relies on
# its includer's context breaks this target, not some downstream user.
function(tso_add_header_check)
  file(GLOB_RECURSE _headers RELATIVE ${CMAKE_SOURCE_DIR}/src
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.h)
  set(_stubs "")
  foreach(_hdr IN LISTS _headers)
    string(REPLACE "/" "_" _stub_name ${_hdr})
    string(REPLACE ".h" ".cc" _stub_name ${_stub_name})
    set(_stub ${CMAKE_BINARY_DIR}/header_check/${_stub_name})
    file(CONFIGURE OUTPUT ${_stub} CONTENT "#include \"${_hdr}\"\n" @ONLY)
    list(APPEND _stubs ${_stub})
  endforeach()
  add_library(tso_header_check OBJECT EXCLUDE_FROM_ALL ${_stubs})
  target_link_libraries(tso_header_check PRIVATE tso_options)
endfunction()
