# Enables the sanitizers named in TSO_SANITIZE (a semicolon-separated list,
# e.g. -DTSO_SANITIZE=address;undefined or -DTSO_SANITIZE=thread). Called
# from the root CMakeLists before any target is declared, it uses
# directory-scoped compile/link options so that every target in the tree —
# including FetchContent'd GoogleTest — is instrumented consistently (mixing
# instrumented and uninstrumented TUs in one binary can yield spurious
# container-overflow reports and blind spots).
function(tso_enable_sanitizers)
  if(NOT TSO_SANITIZE)
    return()
  endif()
  # TSan owns the whole address space layout; combining it with ASan/LSan is
  # rejected by the compilers with an obscure error, so fail early instead.
  if("thread" IN_LIST TSO_SANITIZE)
    foreach(_incompatible address leak memory)
      if("${_incompatible}" IN_LIST TSO_SANITIZE)
        message(FATAL_ERROR
          "TSO: -fsanitize=thread cannot be combined with "
          "-fsanitize=${_incompatible}; configure them as separate builds")
      endif()
    endforeach()
  endif()
  set(_flags "")
  foreach(_san IN LISTS TSO_SANITIZE)
    list(APPEND _flags "-fsanitize=${_san}")
  endforeach()
  list(APPEND _flags -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_compile_options(${_flags})
  add_link_options(${_flags})
  message(STATUS "TSO: sanitizers enabled globally: ${TSO_SANITIZE}")
endfunction()
