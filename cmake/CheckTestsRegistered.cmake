cmake_minimum_required(VERSION 3.20)
# Test-time guard: every tests/*.cc file must be registered as a CTest test.
# Inputs: TESTS_DIR (source tests/ directory) and REGISTERED_LIST (newline-
# separated list of registered test names written at configure time).
file(GLOB _sources RELATIVE ${TESTS_DIR} ${TESTS_DIR}/*.cc)
file(STRINGS ${REGISTERED_LIST} _registered)
set(_missing "")
foreach(_src IN LISTS _sources)
  string(REGEX REPLACE "\\.cc$" "" _name ${_src})
  if(NOT _name IN_LIST _registered)
    list(APPEND _missing ${_src})
  endif()
endforeach()
if(_missing)
  message(FATAL_ERROR
    "tests/*.cc files not registered in tests/CMakeLists.txt: ${_missing}. "
    "Add them to TSO_ALL_TESTS (and re-run cmake) so they run under CTest.")
endif()
list(LENGTH _sources _count)
message(STATUS "All ${_count} tests/*.cc files are registered with CTest.")
